file(REMOVE_RECURSE
  "CMakeFiles/licm_anonymize.dir/generalize.cc.o"
  "CMakeFiles/licm_anonymize.dir/generalize.cc.o.d"
  "CMakeFiles/licm_anonymize.dir/grouping.cc.o"
  "CMakeFiles/licm_anonymize.dir/grouping.cc.o.d"
  "CMakeFiles/licm_anonymize.dir/hierarchy.cc.o"
  "CMakeFiles/licm_anonymize.dir/hierarchy.cc.o.d"
  "CMakeFiles/licm_anonymize.dir/licm_encode.cc.o"
  "CMakeFiles/licm_anonymize.dir/licm_encode.cc.o.d"
  "CMakeFiles/licm_anonymize.dir/suppress.cc.o"
  "CMakeFiles/licm_anonymize.dir/suppress.cc.o.d"
  "liblicm_anonymize.a"
  "liblicm_anonymize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/licm_anonymize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
