file(REMOVE_RECURSE
  "liblicm_sampler.a"
)
