file(REMOVE_RECURSE
  "CMakeFiles/licm_sampler.dir/monte_carlo.cc.o"
  "CMakeFiles/licm_sampler.dir/monte_carlo.cc.o.d"
  "CMakeFiles/licm_sampler.dir/structure.cc.o"
  "CMakeFiles/licm_sampler.dir/structure.cc.o.d"
  "liblicm_sampler.a"
  "liblicm_sampler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/licm_sampler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
