# Empty compiler generated dependencies file for licm_sampler.
# This may be replaced when dependencies are built.
