file(REMOVE_RECURSE
  "CMakeFiles/licm_solver.dir/components.cc.o"
  "CMakeFiles/licm_solver.dir/components.cc.o.d"
  "CMakeFiles/licm_solver.dir/linear_program.cc.o"
  "CMakeFiles/licm_solver.dir/linear_program.cc.o.d"
  "CMakeFiles/licm_solver.dir/lp_format.cc.o"
  "CMakeFiles/licm_solver.dir/lp_format.cc.o.d"
  "CMakeFiles/licm_solver.dir/mip_solver.cc.o"
  "CMakeFiles/licm_solver.dir/mip_solver.cc.o.d"
  "CMakeFiles/licm_solver.dir/presolve.cc.o"
  "CMakeFiles/licm_solver.dir/presolve.cc.o.d"
  "CMakeFiles/licm_solver.dir/propagation.cc.o"
  "CMakeFiles/licm_solver.dir/propagation.cc.o.d"
  "CMakeFiles/licm_solver.dir/simplex.cc.o"
  "CMakeFiles/licm_solver.dir/simplex.cc.o.d"
  "liblicm_solver.a"
  "liblicm_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/licm_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
