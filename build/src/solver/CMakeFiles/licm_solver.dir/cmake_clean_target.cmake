file(REMOVE_RECURSE
  "liblicm_solver.a"
)
