# Empty compiler generated dependencies file for licm_solver.
# This may be replaced when dependencies are built.
