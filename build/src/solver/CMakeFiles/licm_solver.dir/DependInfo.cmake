
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/components.cc" "src/solver/CMakeFiles/licm_solver.dir/components.cc.o" "gcc" "src/solver/CMakeFiles/licm_solver.dir/components.cc.o.d"
  "/root/repo/src/solver/linear_program.cc" "src/solver/CMakeFiles/licm_solver.dir/linear_program.cc.o" "gcc" "src/solver/CMakeFiles/licm_solver.dir/linear_program.cc.o.d"
  "/root/repo/src/solver/lp_format.cc" "src/solver/CMakeFiles/licm_solver.dir/lp_format.cc.o" "gcc" "src/solver/CMakeFiles/licm_solver.dir/lp_format.cc.o.d"
  "/root/repo/src/solver/mip_solver.cc" "src/solver/CMakeFiles/licm_solver.dir/mip_solver.cc.o" "gcc" "src/solver/CMakeFiles/licm_solver.dir/mip_solver.cc.o.d"
  "/root/repo/src/solver/presolve.cc" "src/solver/CMakeFiles/licm_solver.dir/presolve.cc.o" "gcc" "src/solver/CMakeFiles/licm_solver.dir/presolve.cc.o.d"
  "/root/repo/src/solver/propagation.cc" "src/solver/CMakeFiles/licm_solver.dir/propagation.cc.o" "gcc" "src/solver/CMakeFiles/licm_solver.dir/propagation.cc.o.d"
  "/root/repo/src/solver/simplex.cc" "src/solver/CMakeFiles/licm_solver.dir/simplex.cc.o" "gcc" "src/solver/CMakeFiles/licm_solver.dir/simplex.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/licm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
