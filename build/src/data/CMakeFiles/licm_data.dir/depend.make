# Empty dependencies file for licm_data.
# This may be replaced when dependencies are built.
