file(REMOVE_RECURSE
  "CMakeFiles/licm_data.dir/csv.cc.o"
  "CMakeFiles/licm_data.dir/csv.cc.o.d"
  "CMakeFiles/licm_data.dir/transactions.cc.o"
  "CMakeFiles/licm_data.dir/transactions.cc.o.d"
  "liblicm_data.a"
  "liblicm_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/licm_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
