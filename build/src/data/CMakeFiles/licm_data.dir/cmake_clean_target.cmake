file(REMOVE_RECURSE
  "liblicm_data.a"
)
