// Unit tests for the incremental dual simplex (warm-started node
// relaxations), reduced-cost fixing, and cardinality cut separation.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "solver/cuts.h"
#include "solver/linear_program.h"
#include "solver/mip_solver.h"
#include "solver/simplex.h"

namespace licm::solver {
namespace {

// Builds a random LP over binary boxes (continuous vars in [0,1], the
// regime IncrementalLp targets) with small integer data.
LinearProgram RandomBoxLp(uint64_t seed, int* out_n) {
  Rng rng(seed);
  const int n = 2 + static_cast<int>(rng.Uniform(5));  // 2..6 vars
  const int m = 1 + static_cast<int>(rng.Uniform(5));
  LinearProgram lp;
  for (int v = 0; v < n; ++v) {
    VarId id = lp.AddVariable(0, 1, false);
    lp.SetObjectiveCoef(id, static_cast<double>(rng.UniformInt(-3, 3)));
  }
  for (int r = 0; r < m; ++r) {
    Row row;
    for (int v = 0; v < n; ++v) {
      int64_t c = rng.UniformInt(-2, 2);
      if (c != 0) {
        row.terms.push_back(Term{static_cast<VarId>(v),
                                 static_cast<double>(c)});
      }
    }
    row.op = static_cast<RowOp>(rng.Uniform(3));
    row.rhs = static_cast<double>(rng.UniformInt(-1, 3));
    if (row.terms.empty()) continue;
    lp.AddRow(std::move(row));
  }
  *out_n = n;
  return lp;
}

// Dual simplex from the cold all-slack basis must agree with the primal
// two-phase engine on every random LP (optimal value, or both infeasible).
class IncrementalLpRandom : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalLpRandom, ColdSolveMatchesPrimalSimplex) {
  int n = 0;
  LinearProgram lp = RandomBoxLp(static_cast<uint64_t>(GetParam()), &n);
  ASSERT_TRUE(IncrementalLp::Suitable(lp, SimplexOptions{}));
  LpSolution ref = SolveLpRelaxation(lp, Sense::kMaximize);
  IncrementalLp inc(lp);
  std::vector<double> lo(n, 0.0), hi(n, 1.0);
  SolveStatus st = inc.Solve(lo, hi);
  ASSERT_EQ(st, ref.status);
  if (st == SolveStatus::kOptimal) {
    EXPECT_NEAR(inc.objective(), ref.objective, 1e-6);
    EXPECT_TRUE(lp.IsFeasible(inc.values(), 1e-6));
  }
}

// Warm re-solves under tightened bounds must match a cold primal solve of
// the equivalently-bounded program — the correctness core of the
// warm-started node relaxation.
TEST_P(IncrementalLpRandom, WarmResolveMatchesColdUnderBoundFlips) {
  int n = 0;
  LinearProgram lp = RandomBoxLp(static_cast<uint64_t>(GetParam()) + 1000, &n);
  IncrementalLp inc(lp);
  std::vector<double> lo(n, 0.0), hi(n, 1.0);
  (void)inc.Solve(lo, hi);  // establish a basis
  Rng rng(static_cast<uint64_t>(GetParam()) + 5000);
  for (int step = 0; step < 8; ++step) {
    // Randomly fix / unfix one variable, like a B&B descent with
    // backtracking.
    const int v = static_cast<int>(rng.Uniform(static_cast<uint64_t>(n)));
    switch (rng.Uniform(3)) {
      case 0: lo[v] = hi[v] = 0.0; break;
      case 1: lo[v] = hi[v] = 1.0; break;
      default: lo[v] = 0.0; hi[v] = 1.0; break;
    }
    LinearProgram bounded = lp;
    for (int u = 0; u < n; ++u) {
      bounded.mutable_vars()[u].lower = lo[u];
      bounded.mutable_vars()[u].upper = hi[u];
    }
    LpSolution ref = SolveLpRelaxation(bounded, Sense::kMaximize);
    SolveStatus st = inc.Solve(lo, hi);
    ASSERT_EQ(st, ref.status) << "seed " << GetParam() << " step " << step;
    if (st == SolveStatus::kOptimal) {
      EXPECT_NEAR(inc.objective(), ref.objective, 1e-6)
          << "seed " << GetParam() << " step " << step;
      for (int u = 0; u < n; ++u) {
        EXPECT_GE(inc.values()[u], lo[u] - 1e-6);
        EXPECT_LE(inc.values()[u], hi[u] + 1e-6);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalLpRandom, ::testing::Range(0, 60));

TEST(IncrementalLp, WarmResolveTakesFewPivots) {
  // max sum b_i st sum b_i <= 3 over 8 binaries: re-solving after fixing
  // one variable must cost far fewer pivots than the cold solve.
  LinearProgram lp;
  std::vector<Term> terms;
  for (int i = 0; i < 8; ++i) {
    VarId b = lp.AddVariable(0, 1, false);
    lp.SetObjectiveCoef(b, 1.0 + 0.01 * i);
    terms.push_back(Term{b, 1.0});
  }
  lp.AddRow(Row{terms, RowOp::kLe, 3});
  IncrementalLp inc(lp);
  std::vector<double> lo(8, 0.0), hi(8, 1.0);
  ASSERT_EQ(inc.Solve(lo, hi), SolveStatus::kOptimal);
  EXPECT_NEAR(inc.objective(), 3.0 + 0.01 * (7 + 6 + 5), 1e-6);
  lo[7] = hi[7] = 0.0;  // exclude the best variable
  ASSERT_EQ(inc.Solve(lo, hi), SolveStatus::kOptimal);
  EXPECT_NEAR(inc.objective(), 3.0 + 0.01 * (6 + 5 + 4), 1e-6);
  EXPECT_LE(inc.last_pivots(), 3);
  EXPECT_EQ(inc.stats().solves, 2);
}

TEST(IncrementalLp, DetectsInfeasibleBoundChange) {
  // b1 + b2 >= 1; fixing both to 0 must be detected as infeasible, and
  // relaxing them again must recover the optimum.
  LinearProgram lp;
  VarId a = lp.AddVariable(0, 1, false);
  VarId b = lp.AddVariable(0, 1, false);
  lp.SetObjectiveCoef(a, -1.0);
  lp.SetObjectiveCoef(b, -2.0);
  lp.AddRow(Row{{{a, 1}, {b, 1}}, RowOp::kGe, 1});
  IncrementalLp inc(lp);
  std::vector<double> lo{0, 0}, hi{1, 1};
  ASSERT_EQ(inc.Solve(lo, hi), SolveStatus::kOptimal);
  EXPECT_NEAR(inc.objective(), -1.0, 1e-9);
  hi[0] = hi[1] = 0.0;
  EXPECT_EQ(inc.Solve(lo, hi), SolveStatus::kInfeasible);
  hi[0] = hi[1] = 1.0;
  ASSERT_EQ(inc.Solve(lo, hi), SolveStatus::kOptimal);
  EXPECT_NEAR(inc.objective(), -1.0, 1e-9);
}

TEST(IncrementalLp, SaveRestoreBasisRoundTrips) {
  LinearProgram lp;
  std::vector<Term> terms;
  for (int i = 0; i < 5; ++i) {
    VarId v = lp.AddVariable(0, 1, false);
    lp.SetObjectiveCoef(v, static_cast<double>(i + 1));
    terms.push_back(Term{v, 1.0});
  }
  lp.AddRow(Row{terms, RowOp::kLe, 2});
  IncrementalLp donor(lp);
  std::vector<double> lo(5, 0.0), hi(5, 1.0);
  ASSERT_EQ(donor.Solve(lo, hi), SolveStatus::kOptimal);
  LpBasis basis = donor.SaveBasis();
  EXPECT_FALSE(basis.empty());

  IncrementalLp child(lp);
  child.RestoreBasis(basis);
  ASSERT_EQ(child.Solve(lo, hi), SolveStatus::kOptimal);
  EXPECT_NEAR(child.objective(), donor.objective(), 1e-9);
  // Restoring a mismatched snapshot must fall back to the cold basis, not
  // crash or corrupt state.
  LpBasis bogus;
  bogus.status.assign(3, VarStatus::kAtLower);
  child.RestoreBasis(bogus);
  ASSERT_EQ(child.Solve(lo, hi), SolveStatus::kOptimal);
  EXPECT_NEAR(child.objective(), donor.objective(), 1e-9);
}

TEST(IncrementalLp, ReducedCostSignsAtOptimum) {
  // max 3a - b with a non-binding row: optimum a=1, b=0, both nonbasic
  // (non-degenerate vertex). b at lower must have d <= 0, and lp_obj + d
  // must still bound every solution with b = 1 (best such scores 2).
  LinearProgram lp;
  VarId a = lp.AddVariable(0, 1, false);
  VarId b = lp.AddVariable(0, 1, false);
  lp.SetObjectiveCoef(a, 3.0);
  lp.SetObjectiveCoef(b, -1.0);
  lp.AddRow(Row{{{a, 1}, {b, 1}}, RowOp::kLe, 2});
  IncrementalLp inc(lp);
  ASSERT_EQ(inc.Solve({0, 0}, {1, 1}), SolveStatus::kOptimal);
  EXPECT_NEAR(inc.objective(), 3.0, 1e-9);
  ASSERT_EQ(inc.StatusOf(a), VarStatus::kAtUpper);
  EXPECT_GE(inc.ReducedCost(a), -1e-9);
  ASSERT_EQ(inc.StatusOf(b), VarStatus::kAtLower);
  EXPECT_LE(inc.ReducedCost(b), 1e-9);
  EXPECT_GE(inc.objective() + inc.ReducedCost(b) + 1e-6, 2.0);
}

TEST(IncrementalLp, AddCutRowTightensRelaxation) {
  // max b1 + b2 + b3 st 2b1 + 2b2 + 2b3 <= 3: LP optimum 1.5, integer
  // optimum 1. The cover cut b1 + b2 + b3 <= 1 closes the gap.
  LinearProgram lp;
  std::vector<Term> heavy, unit;
  for (int i = 0; i < 3; ++i) {
    VarId v = lp.AddVariable(0, 1, false);
    lp.SetObjectiveCoef(v, 1.0);
    heavy.push_back(Term{v, 2.0});
    unit.push_back(Term{v, 1.0});
  }
  lp.AddRow(Row{heavy, RowOp::kLe, 3});
  IncrementalLp inc(lp);
  std::vector<double> lo(3, 0.0), hi(3, 1.0);
  ASSERT_EQ(inc.Solve(lo, hi), SolveStatus::kOptimal);
  EXPECT_NEAR(inc.objective(), 1.5, 1e-9);
  inc.AddCutRow(Row{unit, RowOp::kLe, 1});
  EXPECT_EQ(inc.num_cut_rows(), 1u);
  ASSERT_EQ(inc.Solve(lo, hi), SolveStatus::kOptimal);
  EXPECT_NEAR(inc.objective(), 1.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Cardinality cut separation.

double RowActivity(const Row& row, const std::vector<double>& x) {
  double a = 0.0;
  for (const Term& t : row.terms) a += t.coef * x[t.var];
  return a;
}

bool RowSatisfied(const Row& row, const std::vector<double>& x) {
  const double a = RowActivity(row, x);
  switch (row.op) {
    case RowOp::kLe: return a <= row.rhs + 1e-6;
    case RowOp::kGe: return a >= row.rhs - 1e-6;
    default: return std::abs(a - row.rhs) <= 1e-6;
  }
}

// Every generated cut must be satisfied by every feasible 0/1 point (cuts
// only shave fractional vertices) and violated by the fractional point it
// was separated from.
class CutValidity : public ::testing::TestWithParam<int> {};

TEST_P(CutValidity, CutsValidForAllIntegerPoints) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 42);
  const int n = 3 + static_cast<int>(rng.Uniform(4));  // 3..6 binaries
  LinearProgram lp;
  for (int v = 0; v < n; ++v) {
    VarId id = lp.AddVariable(0, 1, true);
    lp.SetObjectiveCoef(id, static_cast<double>(rng.UniformInt(-2, 3)));
  }
  for (int r = 0; r < 3; ++r) {
    Row row;
    for (int v = 0; v < n; ++v) {
      int64_t c = rng.UniformInt(-2, 3);
      if (c != 0) {
        row.terms.push_back(Term{static_cast<VarId>(v),
                                 static_cast<double>(c)});
      }
    }
    if (row.terms.size() < 3) continue;
    row.op = rng.Uniform(2) == 0 ? RowOp::kLe : RowOp::kGe;
    row.rhs = static_cast<double>(rng.UniformInt(1, 4));
    lp.AddRow(std::move(row));
  }
  // A fractional point to separate at.
  std::vector<double> x(n);
  for (int v = 0; v < n; ++v) {
    x[v] = 0.1 * static_cast<double>(rng.Uniform(11));
  }
  CutOptions copt;
  std::vector<Row> cuts = GenerateCardinalityCuts(lp, x, copt);
  for (const Row& cut : cuts) {
    EXPECT_FALSE(RowSatisfied(cut, x))
        << "separated cut must be violated at the fractional point";
    for (int mask = 0; mask < (1 << n); ++mask) {
      std::vector<double> p(n);
      for (int v = 0; v < n; ++v) p[v] = (mask >> v) & 1;
      if (!lp.IsFeasible(p)) continue;
      EXPECT_TRUE(RowSatisfied(cut, p))
          << "cut cuts off feasible integer point, seed " << GetParam()
          << " mask " << mask;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CutValidity, ::testing::Range(0, 40));

TEST(Cuts, SeparatesCoverFromFractionalKnapsack) {
  // 2b1 + 2b2 + 2b3 <= 3 at x = (0.5, 0.5, 0.5): the cover b1+b2+b3 <= 1
  // (or an equivalent) must be found, violated by 0.5.
  LinearProgram lp;
  std::vector<Term> heavy;
  for (int i = 0; i < 3; ++i) {
    VarId v = lp.AddVariable(0, 1, true);
    lp.SetObjectiveCoef(v, 1.0);
    heavy.push_back(Term{v, 2.0});
  }
  lp.AddRow(Row{heavy, RowOp::kLe, 3});
  CutOptions copt;
  std::vector<Row> cuts =
      GenerateCardinalityCuts(lp, {0.5, 0.5, 0.5}, copt);
  ASSERT_FALSE(cuts.empty());
  bool found = false;
  for (const Row& cut : cuts) {
    found |= !RowSatisfied(cut, std::vector<double>{0.5, 0.5, 0.5});
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Reduced-cost fixing: end-to-end parity against brute-force enumeration.

struct BruteForce {
  bool feasible = false;
  double best = -kInfinity;
};

BruteForce Enumerate(const LinearProgram& lp) {
  BruteForce r;
  const int n = static_cast<int>(lp.num_vars());
  for (int mask = 0; mask < (1 << n); ++mask) {
    std::vector<double> x(n);
    for (int v = 0; v < n; ++v) x[v] = (mask >> v) & 1;
    if (!lp.IsFeasible(x)) continue;
    r.feasible = true;
    r.best = std::max(r.best, lp.EvalObjective(x));
  }
  return r;
}

LinearProgram RandomBinaryProgram(uint64_t seed) {
  Rng rng(seed);
  const int n = 3 + static_cast<int>(rng.Uniform(6));  // 3..8 binaries
  const int m = 2 + static_cast<int>(rng.Uniform(4));
  LinearProgram lp;
  for (int v = 0; v < n; ++v) {
    VarId id = lp.AddVariable(0, 1, true);
    lp.SetObjectiveCoef(id, static_cast<double>(rng.UniformInt(-4, 4)));
  }
  for (int r = 0; r < m; ++r) {
    Row row;
    for (int v = 0; v < n; ++v) {
      int64_t c = rng.UniformInt(-2, 2);
      if (c != 0) {
        row.terms.push_back(Term{static_cast<VarId>(v),
                                 static_cast<double>(c)});
      }
    }
    row.op = static_cast<RowOp>(rng.Uniform(3));
    row.rhs = static_cast<double>(rng.UniformInt(-1, 3));
    if (row.terms.empty()) continue;
    lp.AddRow(std::move(row));
  }
  return lp;
}

// With every incremental-LP feature enabled (warm LP, RC fixing, cuts,
// pseudo-costs), the proved optimum must be bit-identical to brute-force
// enumeration — RC fixing may discard alternative optima but never the
// optimal *value*, and the returned witness must stay feasible + optimal.
class RcFixingParity : public ::testing::TestWithParam<int> {};

TEST_P(RcFixingParity, FeaturesOnMatchesEnumeration) {
  LinearProgram lp = RandomBinaryProgram(static_cast<uint64_t>(GetParam()));
  BruteForce ref = Enumerate(lp);
  MipOptions opt;
  opt.num_threads = 1;
  opt.use_warm_lp = true;
  opt.use_rc_fixing = true;
  opt.use_cuts = true;
  opt.use_pseudo_cost = true;
  opt.use_adaptive_prologue = true;
  MipResult res = MipSolver(opt).Solve(lp, Sense::kMaximize);
  if (!ref.feasible) {
    EXPECT_EQ(res.status, SolveStatus::kInfeasible);
    return;
  }
  ASSERT_EQ(res.status, SolveStatus::kOptimal) << "seed " << GetParam();
  EXPECT_EQ(res.objective, ref.best) << "seed " << GetParam();
  ASSERT_TRUE(res.has_solution);
  EXPECT_TRUE(lp.IsFeasible(res.solution));
  EXPECT_EQ(lp.EvalObjective(res.solution), ref.best);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RcFixingParity, ::testing::Range(0, 80));

TEST(RcFixing, UniqueOptimumSurvives) {
  // max 5a + b + c st a + b + c <= 2: unique optimum (1,1,0)... not quite —
  // b and c tie. Break the tie: max 5a + 2b + c, unique optimum (1,1,0)
  // with value 7. RC fixing must never fix away any variable of the unique
  // optimal support.
  LinearProgram lp;
  VarId a = lp.AddVariable(0, 1, true);
  VarId b = lp.AddVariable(0, 1, true);
  VarId c = lp.AddVariable(0, 1, true);
  lp.SetObjectiveCoef(a, 5.0);
  lp.SetObjectiveCoef(b, 2.0);
  lp.SetObjectiveCoef(c, 1.0);
  lp.AddRow(Row{{{a, 1}, {b, 1}, {c, 1}}, RowOp::kLe, 2});
  MipOptions opt;
  opt.num_threads = 1;
  MipResult res = MipSolver(opt).Solve(lp, Sense::kMaximize);
  ASSERT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_EQ(res.objective, 7.0);
  ASSERT_TRUE(res.has_solution);
  EXPECT_EQ(res.solution[a], 1.0);
  EXPECT_EQ(res.solution[b], 1.0);
  EXPECT_EQ(res.solution[c], 0.0);
}

// Feature ablation must not change proved bounds: all-on vs all-off on
// random programs, both senses, exact double equality.
class FeatureParity : public ::testing::TestWithParam<int> {};

TEST_P(FeatureParity, OnOffBitIdenticalBounds) {
  LinearProgram lp =
      RandomBinaryProgram(static_cast<uint64_t>(GetParam()) + 300);
  MipOptions on;
  on.num_threads = 1;
  MipOptions off = on;
  off.use_warm_lp = false;
  off.use_rc_fixing = false;
  off.use_cuts = false;
  off.use_pseudo_cost = false;
  off.use_adaptive_prologue = false;
  MinMaxMipResult r_on = MipSolver(on).SolveMinMax(lp);
  MinMaxMipResult r_off = MipSolver(off).SolveMinMax(lp);
  ASSERT_EQ(r_on.max.status, r_off.max.status) << "seed " << GetParam();
  ASSERT_EQ(r_on.min.status, r_off.min.status) << "seed " << GetParam();
  if (r_on.max.status == SolveStatus::kOptimal) {
    EXPECT_EQ(r_on.max.objective, r_off.max.objective);
    EXPECT_EQ(r_on.min.objective, r_off.min.objective);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FeatureParity, ::testing::Range(0, 60));

}  // namespace
}  // namespace licm::solver
