// Tests for the work-stealing task scheduler shared by cross-component
// and intra-component parallel branch & bound.
#include "solver/scheduler.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

namespace licm::solver {
namespace {

TEST(Scheduler, ResolveThreadsPassesPositiveCountsThrough) {
  EXPECT_EQ(Scheduler::ResolveThreads(1), 1);
  EXPECT_EQ(Scheduler::ResolveThreads(4), 4);
  EXPECT_EQ(Scheduler::ResolveThreads(Scheduler::kMaxThreads),
            Scheduler::kMaxThreads);
  EXPECT_EQ(Scheduler::ResolveThreads(Scheduler::kMaxThreads + 50),
            Scheduler::kMaxThreads);
}

TEST(Scheduler, ResolveThreadsAutoDetectsWithinCaps) {
  for (int req : {0, -1, -100}) {
    const int n = Scheduler::ResolveThreads(req);
    EXPECT_GE(n, 1) << req;
    EXPECT_LE(n, Scheduler::kMaxAutoThreads) << req;
  }
}

TEST(Scheduler, RunsEveryTask) {
  Scheduler sched(4);
  EXPECT_EQ(sched.num_threads(), 4);
  std::atomic<int> count{0};
  {
    Scheduler::Group group(&sched);
    for (int i = 0; i < 200; ++i) {
      group.Submit([&count] { count.fetch_add(1); });
    }
    group.Wait();
    EXPECT_EQ(count.load(), 200);
  }
}

TEST(Scheduler, SingleThreadRunsInlineAndNeverReportsIdleWorkers) {
  Scheduler sched(1);
  EXPECT_EQ(sched.num_threads(), 1);
  // No worker exists and the caller is busy submitting, so splitting must
  // stay disabled throughout.
  EXPECT_FALSE(sched.HasIdleWorker());
  std::atomic<int> count{0};
  Scheduler::Group group(&sched);
  for (int i = 0; i < 50; ++i) {
    group.Submit([&] {
      count.fetch_add(1);
      EXPECT_FALSE(sched.HasIdleWorker());
    });
  }
  group.Wait();
  EXPECT_EQ(count.load(), 50);
}

TEST(Scheduler, MultiThreadReportsIdleCapacityUpFront) {
  // Workers are lazy: before any submission the pool has unspawned
  // capacity, which counts as idle (a task submitted now starts at once).
  Scheduler sched(4);
  EXPECT_TRUE(sched.HasIdleWorker());
}

TEST(Scheduler, TasksMaySubmitMoreTasksIntoTheirOwnGroup) {
  // Subtree donation submits from inside a running task; Wait must not
  // return until the recursively spawned work is done too.
  Scheduler sched(4);
  std::atomic<int> count{0};
  {
    Scheduler::Group group(&sched);
    for (int i = 0; i < 8; ++i) {
      group.Submit([&] {
        count.fetch_add(1);
        for (int j = 0; j < 4; ++j) {
          group.Submit([&] {
            count.fetch_add(1);
            group.Submit([&] { count.fetch_add(1); });
          });
        }
      });
    }
    group.Wait();
    EXPECT_EQ(count.load(), 8 + 8 * 4 + 8 * 4);
  }
}

TEST(Scheduler, SequentialGroupsReuseOnePool) {
  Scheduler sched(3);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> count{0};
    Scheduler::Group group(&sched);
    for (int i = 0; i < 20; ++i) {
      group.Submit([&count] { count.fetch_add(1); });
    }
    group.Wait();
    EXPECT_EQ(count.load(), 20) << "round " << round;
  }
}

TEST(Scheduler, ConcurrentGroupsShareThePool) {
  // Two groups interleaved in the same pool: each Wait tracks only its
  // own tasks, and a waiter helps with the other group's work instead of
  // blocking a slot.
  Scheduler sched(2);
  std::atomic<int> a{0}, b{0};
  Scheduler::Group ga(&sched);
  Scheduler::Group gb(&sched);
  for (int i = 0; i < 30; ++i) {
    ga.Submit([&a] { a.fetch_add(1); });
    gb.Submit([&b] { b.fetch_add(1); });
  }
  ga.Wait();
  EXPECT_EQ(a.load(), 30);
  gb.Wait();
  EXPECT_EQ(b.load(), 30);
}

TEST(Scheduler, StressManySmallTasks) {
  Scheduler sched(8);
  std::atomic<int64_t> sum{0};
  {
    Scheduler::Group group(&sched);
    for (int i = 1; i <= 2000; ++i) {
      group.Submit([&sum, i] { sum.fetch_add(i); });
    }
    group.Wait();
  }
  EXPECT_EQ(sum.load(), 2000LL * 2001 / 2);
}

TEST(Scheduler, DestructorJoinsAfterGroupsDrain) {
  // A scheduler destroyed right after its last Wait must shut down
  // cleanly (no task may be left queued).
  for (int round = 0; round < 5; ++round) {
    Scheduler sched(4);
    std::atomic<int> count{0};
    Scheduler::Group group(&sched);
    for (int i = 0; i < 40; ++i) group.Submit([&] { count.fetch_add(1); });
    group.Wait();
    EXPECT_EQ(count.load(), 40);
  }
}

}  // namespace
}  // namespace licm::solver
