// Tests of the query service layer (src/service/): the JSON parser, the
// wire protocol, admission control, degraded responses, the batch
// transport, and a loopback TCP session (skipped when the sandbox
// forbids binding).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "licm/evaluator.h"
#include "service/json.h"
#include "service/protocol.h"
#include "service/query_service.h"
#include "service/server.h"
#include "testing/generator.h"

namespace licm::service {
namespace {

// ---------------------------------------------------------------- JSON --

TEST(Json, ParsesScalarsObjectsAndArrays) {
  auto v = ParseJson(
      R"({"a": 1.5, "b": "x\ny", "c": [true, false, null], "d": {"e": -2}})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  ASSERT_TRUE(v->IsObject());
  EXPECT_EQ(1.5, v->GetNumber("a", 0).value());
  EXPECT_EQ("x\ny", v->GetString("b", "").value());
  const JsonValue* c = v->Find("c");
  ASSERT_NE(nullptr, c);
  ASSERT_EQ(JsonValue::Kind::kArray, c->kind);
  ASSERT_EQ(3u, c->array.size());
  EXPECT_EQ(JsonValue::Kind::kBool, c->array[0].kind);
  EXPECT_EQ(JsonValue::Kind::kNull, c->array[2].kind);
  const JsonValue* d = v->Find("d");
  ASSERT_NE(nullptr, d);
  EXPECT_EQ(-2, d->GetInt("e", 0).value());
}

TEST(Json, TypedAccessorsDefaultWhenAbsentAndErrorWhenMistyped) {
  auto v = ParseJson(R"({"n": 3, "s": "hi"})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(7, v->GetInt("missing", 7).value());
  EXPECT_EQ("d", v->GetString("missing", "d").value());
  EXPECT_FALSE(v->GetString("n", "").ok());
  EXPECT_FALSE(v->GetNumber("s", 0).ok());
  EXPECT_FALSE(v->GetInt("s", 0).ok());
}

TEST(Json, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "1.5.5x", "{\"a\":1} trailing",
        "\"unterminated", "{\"a\" 1}", "nan", "inf"}) {
    auto v = ParseJson(bad);
    EXPECT_FALSE(v.ok()) << "accepted: " << bad;
    if (!v.ok()) {
      EXPECT_EQ(StatusCode::kInvalidArgument, v.status().code());
    }
  }
}

TEST(Json, RejectsExcessiveNesting) {
  std::string deep(64, '[');
  deep += "1";
  deep.append(64, ']');
  auto v = ParseJson(deep);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(std::string::npos, v.status().message().find("deep"));
}

TEST(Json, GetIntRejectsFractions) {
  auto v = ParseJson(R"({"n": 1.5})");
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->GetInt("n", 0).ok());
}

TEST(Json, EscapeRoundTripsControlCharacters) {
  const std::string raw = "a\"b\\c\nd\te\x01f";
  auto v = ParseJson("{\"s\":\"" + JsonEscape(raw) + "\"}");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(raw, v->GetString("s", "").value());
}

// ------------------------------------------------------------ protocol --

TEST(Protocol, ParsesQueryRequestWithDefaults) {
  auto req = ParseRequestLine(R"({"op":"query","instance":"demo"})");
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ("query", req->op);
  EXPECT_EQ("demo", req->instance);
  EXPECT_EQ(-1, req->id);
  EXPECT_EQ(1, req->qnum);
  EXPECT_EQ(-1.0, req->deadline_ms);
  EXPECT_EQ(0, req->mc_worlds);
}

TEST(Protocol, ParsesAllFields) {
  auto req = ParseRequestLine(
      R"({"op":"query","id":9,"instance":"i","qnum":3,"deadline_ms":250,)"
      R"("mc_worlds":12,"seed":77})");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(9, req->id);
  EXPECT_EQ(3, req->qnum);
  EXPECT_EQ(250.0, req->deadline_ms);
  EXPECT_EQ(12, req->mc_worlds);
  EXPECT_EQ(77u, req->seed);
}

TEST(Protocol, ParsesMutateAndLoadFields) {
  auto m = ParseRequestLine(
      R"({"op":"mutate","id":4,"instance":"i","action":"append",)"
      R"("relation":"t","row":"9,z","maybe":true,"cindex":2,"cop":"ge",)"
      R"("rhs":5,"var":3,"value":1})");
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ("mutate", m->op);
  EXPECT_EQ("append", m->action);
  EXPECT_EQ("t", m->relation);
  EXPECT_EQ("9,z", m->row);
  EXPECT_TRUE(m->maybe);
  EXPECT_EQ(2, m->cindex);
  EXPECT_EQ("ge", m->cop);
  EXPECT_EQ(5, m->rhs);
  EXPECT_EQ(3, m->var);
  EXPECT_EQ(1, m->value);

  auto l = ParseRequestLine(
      R"({"op":"load","instance":"i","spec":"kanon:4","replace":true})");
  ASSERT_TRUE(l.ok());
  EXPECT_EQ("kanon:4", l->spec);
  EXPECT_TRUE(l->replace);

  // Mutation fields default to their sentinels.
  auto d = ParseRequestLine(R"({"op":"mutate","instance":"i"})");
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(d->maybe);
  EXPECT_FALSE(d->replace);
  EXPECT_EQ(-1, d->cindex);
  EXPECT_EQ(-1, d->var);
}

TEST(Protocol, MissingOpAndMistypedFieldsAreTypedErrors) {
  EXPECT_FALSE(ParseRequestLine(R"({"id":1})").ok());
  EXPECT_FALSE(ParseRequestLine(R"({"op":"query","qnum":"one"})").ok());
  EXPECT_FALSE(ParseRequestLine(R"({"op":"query","mc_worlds":-1})").ok());
  EXPECT_FALSE(ParseRequestLine(R"([1,2,3])").ok());
}

TEST(Protocol, RenderedResponsesParseBack) {
  QueryResponse r;
  r.degraded = true;
  r.min = 1;
  r.max = 9;
  r.proved_min = 0;
  r.proved_max = 10;
  r.has_samples = true;
  r.sample_min = 2;
  r.sample_max = 8;
  r.sample_worlds = 5;
  auto v = ParseJson(RenderQueryResponse(42, r));
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(42, v->GetInt("id", 0).value());
  EXPECT_TRUE(v->GetBool("ok", false).value());
  EXPECT_TRUE(v->GetBool("degraded", false).value());
  EXPECT_EQ(1.0, v->GetNumber("min", -1).value());
  EXPECT_EQ(9.0, v->GetNumber("max", -1).value());
  EXPECT_EQ(5, v->GetInt("sample_worlds", 0).value());

  auto err = ParseJson(RenderError(7, Status::Overloaded("queue full")));
  ASSERT_TRUE(err.ok());
  EXPECT_FALSE(err->GetBool("ok", true).value());
  EXPECT_EQ("Overloaded", err->GetString("status", "").value());
  EXPECT_EQ("queue full", err->GetString("error", "").value());
}

// -------------------------------------------------------- QueryService --

// A small solvable fuzz case registered as a service instance, with its
// offline baseline for parity checks.
struct ServiceFixture {
  testing::FuzzCase fuzz;
  double exact_min = 0, exact_max = 0;

  static ServiceFixture Make(uint64_t seed_from = 1) {
    for (uint64_t seed = seed_from; seed < seed_from + 64; ++seed) {
      ServiceFixture f;
      f.fuzz = testing::GenerateCase(seed);
      auto ans = AnswerAggregate(*f.fuzz.query, f.fuzz.db, {});
      if (!ans.ok()) continue;  // infeasible case; try the next seed
      EXPECT_TRUE(ans->bounds.min.exact && ans->bounds.max.exact);
      f.exact_min = ans->bounds.min.value;
      f.exact_max = ans->bounds.max.value;
      return f;
    }
    ADD_FAILURE() << "no feasible fuzz case in 64 seeds";
    return {};
  }
};

TEST(QueryService, UnknownInstanceIsNotFound) {
  QueryService svc({.num_workers = 1, .solver_threads = 1});
  ServiceFixture f = ServiceFixture::Make();
  QueryRequest req;
  req.instance = "nope";
  req.query = f.fuzz.query;
  auto resp = svc.Execute(req);
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(StatusCode::kNotFound, resp.status().code());
}

TEST(QueryService, NonAggregateQueryIsInvalid) {
  QueryService svc({.num_workers = 1, .solver_threads = 1});
  QueryRequest req;
  req.instance = "x";
  req.query = nullptr;
  auto resp = svc.Execute(req);
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, resp.status().code());
}

TEST(QueryService, DuplicateInstanceIsRejected) {
  QueryService svc({.num_workers = 1, .solver_threads = 1});
  ServiceFixture f = ServiceFixture::Make();
  ASSERT_TRUE(svc.AddInstance("a", f.fuzz.db).ok());
  Status dup = svc.AddInstance("a", f.fuzz.db);
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(StatusCode::kAlreadyExists, dup.code());
  EXPECT_EQ(std::vector<std::string>{"a"}, svc.InstanceNames());
}

TEST(QueryService, ExactResponseMatchesOfflineBounds) {
  QueryService svc({.num_workers = 2, .solver_threads = 1});
  ServiceFixture f = ServiceFixture::Make();
  ASSERT_TRUE(svc.AddInstance("case", f.fuzz.db).ok());

  QueryRequest req;
  req.instance = "case";
  req.query = f.fuzz.query;
  req.deadline_s = 1e9;
  for (int i = 0; i < 3; ++i) {  // repeat: cache reuse must not change bounds
    auto resp = svc.Execute(req);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_FALSE(resp->degraded);
    EXPECT_TRUE(resp->min_exact);
    EXPECT_TRUE(resp->max_exact);
    EXPECT_EQ(f.exact_min, resp->min);
    EXPECT_EQ(f.exact_max, resp->max);
  }
  ServiceStats stats = svc.Stats();
  EXPECT_EQ(3, stats.admitted);
  EXPECT_EQ(3, stats.completed);
  EXPECT_EQ(0, stats.degraded);
  EXPECT_EQ(0, stats.rejected_overload);
}

TEST(QueryService, ZeroDeadlineDegradesWithContainment) {
  // Deterministic solves: scan seeds until one actually degrades under a
  // zero deadline (trivial cases may still solve exactly via presolve).
  for (uint64_t seed = 1; seed < 64; ++seed) {
    testing::FuzzCase fuzz = testing::GenerateCase(seed);
    auto ans = AnswerAggregate(*fuzz.query, fuzz.db, {});
    if (!ans.ok()) continue;
    QueryService svc({.num_workers = 1,
                      .degraded_worlds = 8,
                      .degraded_seed = 3,
                      .solver_threads = 1});
    ASSERT_TRUE(svc.AddInstance("case", fuzz.db).ok());
    QueryRequest req;
    req.instance = "case";
    req.query = fuzz.query;
    req.deadline_s = 0.0;
    auto resp = svc.Execute(req);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    if (!resp->degraded) continue;
    EXPECT_FALSE(resp->min_exact && resp->max_exact);
    // Containment: the served interval must cover the exact bounds.
    EXPECT_LE(resp->min, ans->bounds.min.value);
    EXPECT_GE(resp->max, ans->bounds.max.value);
    if (resp->has_samples) {
      EXPECT_GE(resp->sample_min, resp->min);
      EXPECT_LE(resp->sample_max, resp->max);
      EXPECT_GT(resp->sample_worlds, 0);
    }
    EXPECT_EQ(1, svc.Stats().degraded);
    return;
  }
  GTEST_SKIP() << "no fuzz case degraded under a zero deadline";
}

TEST(QueryService, QueueOverflowIsTypedAndCounted) {
  QueryService svc({.num_workers = 1, .max_queue = 1, .solver_threads = 1});
  ServiceFixture f = ServiceFixture::Make();
  ASSERT_TRUE(svc.AddInstance("case", f.fuzz.db).ok());

  // Hold the single worker hostage so requests pile up deterministically.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};
  svc.SetSolveHookForTest([&] {
    ++entered;
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });

  QueryRequest req;
  req.instance = "case";
  req.query = f.fuzz.query;
  req.deadline_s = 1e9;

  std::thread inflight([&] { ASSERT_TRUE(svc.Execute(req).ok()); });
  while (entered.load() == 0) std::this_thread::yield();

  std::thread queued([&] { ASSERT_TRUE(svc.Execute(req).ok()); });
  while (svc.Stats().queue_depth == 0) std::this_thread::yield();

  // Worker busy + queue full: the next arrival must be rejected, typed.
  auto rejected = svc.Execute(req);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(StatusCode::kOverloaded, rejected.status().code());
  EXPECT_NE(std::string::npos, rejected.status().message().find("queue full"));

  ServiceStats mid = svc.Stats();
  EXPECT_EQ(2, mid.admitted);
  EXPECT_EQ(1, mid.rejected_overload);
  EXPECT_EQ(1, mid.inflight);
  EXPECT_EQ(1u, mid.queue_depth);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  inflight.join();
  queued.join();
  svc.SetSolveHookForTest(nullptr);

  ServiceStats done = svc.Stats();
  EXPECT_EQ(2, done.completed);
  EXPECT_EQ(1, done.rejected_overload);
  EXPECT_EQ(0, done.inflight);
  EXPECT_EQ(0u, done.queue_depth);
}

TEST(QueryService, ConcurrentRequestsAllMatchOffline) {
  QueryService svc({.num_workers = 4, .max_queue = 64,
                    .solver_threads = 2});
  ServiceFixture a = ServiceFixture::Make(1);
  ServiceFixture b = ServiceFixture::Make(20);
  ASSERT_TRUE(svc.AddInstance("a", a.fuzz.db).ok());
  ASSERT_TRUE(svc.AddInstance("b", b.fuzz.db).ok());

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      const ServiceFixture& f = (t % 2 == 0) ? a : b;
      QueryRequest req;
      req.instance = (t % 2 == 0) ? "a" : "b";
      req.query = f.fuzz.query;
      req.deadline_s = 1e9;
      for (int i = 0; i < 4; ++i) {
        auto resp = svc.Execute(req);
        if (!resp.ok() || resp->degraded || resp->min != f.exact_min ||
            resp->max != f.exact_max) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(0, mismatches.load());
  EXPECT_EQ(32, svc.Stats().completed);
}

// --------------------------------------------------------- observability --

TEST(QueryService, SlowLogCapturesNewestFirstAndEvictsOldest) {
  // slo_ms = 0 captures every completed request; capacity 2 forces the
  // first capture out once the third lands.
  QueryService svc({.num_workers = 1,
                    .solver_threads = 1,
                    .slo_ms = 0.0,
                    .slowlog_capacity = 2});
  ServiceFixture f = ServiceFixture::Make();
  ASSERT_TRUE(svc.AddInstance("case", f.fuzz.db).ok());

  QueryRequest req;
  req.instance = "case";
  req.query = f.fuzz.query;
  req.deadline_s = 1e9;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(svc.Execute(req).ok());
  }

  const std::vector<SlowQueryRecord> log = svc.SlowLog();
  ASSERT_EQ(2u, log.size());
  EXPECT_EQ(2, log[0].seq);  // newest first
  EXPECT_EQ(1, log[1].seq);  // seq 0 evicted
  EXPECT_EQ("case", log[0].instance);
  EXPECT_FALSE(log[0].query.empty());
  EXPECT_GE(log[0].ts_s, log[1].ts_s);
  EXPECT_GE(log[0].total_ms, 0.0);
  EXPECT_EQ(0.0, log[0].slo_ms);
  // The capture counter keeps counting past evictions.
  EXPECT_EQ(3, svc.Stats().slow_queries);
}

TEST(QueryService, NegativeSloDisablesSlowLogCapture) {
  QueryService svc({.num_workers = 1, .solver_threads = 1, .slo_ms = -1.0});
  ServiceFixture f = ServiceFixture::Make();
  ASSERT_TRUE(svc.AddInstance("case", f.fuzz.db).ok());
  QueryRequest req;
  req.instance = "case";
  req.query = f.fuzz.query;
  req.deadline_s = 1e9;
  ASSERT_TRUE(svc.Execute(req).ok());
  EXPECT_TRUE(svc.SlowLog().empty());
  EXPECT_EQ(0, svc.Stats().slow_queries);
}

TEST(QueryService, StatsSnapshotsAreOrderedAndCarryUptime) {
  QueryService svc({.num_workers = 1, .solver_threads = 1});
  const ServiceStats first = svc.Stats();
  const ServiceStats second = svc.Stats();
  EXPECT_GT(second.snapshot_seq, first.snapshot_seq);
  EXPECT_GE(first.uptime_s, 0.0);
  EXPECT_GE(second.uptime_s, first.uptime_s);
}

// ---------------------------------------------------- mutations / MVCC --

// A deterministic two-component instance: one certain tuple, four maybe
// tuples, b0 + b1 >= 1 and b2 + b3 <= 1. COUNT(*) bounds are [2, 4]; after
// flipping c1 to b2 + b3 >= 1 they become [3, 5].
LicmDatabase TwoComponentDb() {
  LicmDatabase db;
  rel::Schema schema({{"id", rel::ValueType::kInt},
                      {"item", rel::ValueType::kString}});
  LicmRelation r(schema);
  r.AppendUnchecked({int64_t{1}, std::string("a")}, Ext::Certain());
  for (int i = 0; i < 4; ++i) {
    const BVar v = db.pool().New();
    r.AppendUnchecked({int64_t{2 + i}, std::string(1, char('b' + i))},
                      Ext::Maybe(v));
  }
  EXPECT_TRUE(db.AddRelation("t", std::move(r)).ok());
  LinearConstraint c0;
  c0.terms = {{0, 1}, {1, 1}};
  c0.op = ConstraintOp::kGe;
  c0.rhs = 1;
  db.constraints().Add(std::move(c0));
  LinearConstraint c1;
  c1.terms = {{2, 1}, {3, 1}};
  c1.op = ConstraintOp::kLe;
  c1.rhs = 1;
  db.constraints().Add(std::move(c1));
  return db;
}

TEST(QueryService, InFlightQueriesAnswerAgainstTheirAdmissionSnapshot) {
  QueryService svc({.num_workers = 1, .solver_threads = 1});
  ASSERT_TRUE(svc.AddInstance("case", TwoComponentDb()).ok());
  const rel::QueryNodePtr query = rel::CountStar(rel::Scan("t"));

  // Hold the worker at the start of its solve: the request was admitted
  // (snapshot captured) but has not answered yet.
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false, release = false;
  svc.SetSolveHookForTest([&] {
    std::unique_lock<std::mutex> lock(mu);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  });

  Result<QueryResponse> inflight = Status::Internal("unset");
  std::thread t([&] {
    QueryRequest req;
    req.instance = "case";
    req.query = query;
    req.deadline_s = 1e9;
    inflight = svc.Execute(req);
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered; });
  }
  // Commit a mutation while the request is in flight.
  auto edit = svc.EditConstraintRhs("case", 1, ConstraintOp::kGe, 1);
  ASSERT_TRUE(edit.ok()) << edit.status().ToString();
  EXPECT_EQ(2u, edit->version);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
  t.join();
  svc.SetSolveHookForTest(nullptr);

  // The in-flight request answered against the pre-commit snapshot.
  ASSERT_TRUE(inflight.ok()) << inflight.status().ToString();
  EXPECT_EQ(1u, inflight->version);
  EXPECT_EQ(2.0, inflight->min);
  EXPECT_EQ(4.0, inflight->max);

  // A post-commit admission sees the new version and the new bounds.
  QueryRequest req;
  req.instance = "case";
  req.query = query;
  req.deadline_s = 1e9;
  auto after = svc.Execute(req);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(2u, after->version);
  EXPECT_EQ(3.0, after->min);
  EXPECT_EQ(5.0, after->max);
}

TEST(QueryService, StatsCarryMutationCountAndMonotonicVersions) {
  QueryService svc({.num_workers = 1, .solver_threads = 1});
  ASSERT_TRUE(svc.AddInstance("a", TwoComponentDb()).ok());
  ASSERT_TRUE(svc.AddInstance("b", TwoComponentDb()).ok());
  ASSERT_TRUE(svc.EditConstraintRhs("a", 0, ConstraintOp::kGe, 2).ok());
  ASSERT_TRUE(
      svc.AppendTuples("a", "t", {{rel::Tuple{int64_t{9}, std::string("z")},
                                   false, std::nullopt}})
          .ok());
  EXPECT_EQ(3u, *svc.VersionOf("a"));
  EXPECT_EQ(1u, *svc.VersionOf("b"));
  EXPECT_EQ(StatusCode::kNotFound, svc.VersionOf("nope").status().code());

  const ServiceStats s = svc.Stats();
  EXPECT_EQ(2, s.mutations);
  ASSERT_EQ(2u, s.versions.size());  // sorted by name
  EXPECT_EQ("a", s.versions[0].first);
  EXPECT_EQ(3u, s.versions[0].second);
  EXPECT_EQ("b", s.versions[1].first);
  EXPECT_EQ(1u, s.versions[1].second);

  // Versions only ever move forward across snapshots.
  ASSERT_TRUE(
      svc.RetractTuples("a", "t", {rel::Tuple{int64_t{9}, std::string("z")}})
          .ok());
  const ServiceStats s2 = svc.Stats();
  EXPECT_EQ(4u, s2.versions[0].second);
  EXPECT_EQ(3, s2.mutations);
}

TEST(QueryService, LoadCollisionIsTypedAndReplaceBumpsVersion) {
  QueryService svc({.num_workers = 1, .solver_threads = 1});
  ASSERT_TRUE(
      svc.LoadInstance("a", TwoComponentDb(), std::nullopt, false).ok());
  EXPECT_EQ(1u, *svc.VersionOf("a"));

  Status dup = svc.LoadInstance("a", TwoComponentDb(), std::nullopt, false);
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(StatusCode::kAlreadyExists, dup.code());
  EXPECT_NE(std::string::npos, dup.message().find("replace"));
  EXPECT_EQ(1u, *svc.VersionOf("a"));  // collision committed nothing

  ASSERT_TRUE(
      svc.LoadInstance("a", TwoComponentDb(), std::nullopt, true).ok());
  EXPECT_EQ(2u, *svc.VersionOf("a"));
  EXPECT_EQ(1, svc.Stats().mutations);  // the replace was a commit

  // replace=true on a fresh name is a plain registration at version 1.
  ASSERT_TRUE(
      svc.LoadInstance("b", TwoComponentDb(), std::nullopt, true).ok());
  EXPECT_EQ(1u, *svc.VersionOf("b"));
}

// ------------------------------------------------------------ transports --

RequestRouter::QueryFactory FixtureFactory(const ServiceFixture& f) {
  return [query = f.fuzz.query](const WireRequest&)
             -> Result<rel::QueryNodePtr> { return query; };
}

TEST(Transport, BatchModeAnswersLineByLine) {
  QueryService svc({.num_workers = 1, .solver_threads = 1});
  ServiceFixture f = ServiceFixture::Make();
  ASSERT_TRUE(svc.AddInstance("case", f.fuzz.db).ok());
  RequestRouter router(&svc, FixtureFactory(f));

  std::istringstream in(
      "{\"op\":\"ping\",\"id\":1}\n"
      "\n"
      "not json\n"
      "{\"op\":\"query\",\"id\":2,\"instance\":\"case\"}\n"
      "{\"op\":\"bogus\",\"id\":3}\n"
      "{\"op\":\"shutdown\",\"id\":4}\n"
      "{\"op\":\"ping\",\"id\":5}\n");  // after shutdown: never handled
  std::ostringstream out;
  const int64_t handled = RunBatch(&router, in, out);
  EXPECT_EQ(5, handled);  // blank line skipped, post-shutdown line unread

  std::istringstream lines(out.str());
  std::string line;
  std::vector<service::JsonValue> replies;
  while (std::getline(lines, line)) {
    auto v = ParseJson(line);
    ASSERT_TRUE(v.ok()) << line;
    replies.push_back(std::move(*v));
  }
  ASSERT_EQ(5u, replies.size());
  EXPECT_TRUE(replies[0].GetBool("ok", false).value());
  EXPECT_FALSE(replies[1].GetBool("ok", true).value());   // parse error
  EXPECT_EQ(-1, replies[1].GetInt("id", 0).value());
  EXPECT_TRUE(replies[2].GetBool("ok", false).value());   // query
  EXPECT_EQ(f.exact_min, replies[2].GetNumber("min", -1e9).value());
  EXPECT_EQ(f.exact_max, replies[2].GetNumber("max", -1e9).value());
  EXPECT_FALSE(replies[3].GetBool("ok", true).value());   // unknown op
  EXPECT_TRUE(replies[4].GetBool("ok", false).value());   // shutdown ack
  EXPECT_TRUE(replies[4].GetBool("shutting_down", false).value());
}

TEST(Transport, MetricsAndSlowlogVerbs) {
  QueryService svc({.num_workers = 1, .solver_threads = 1, .slo_ms = 0.0});
  ServiceFixture f = ServiceFixture::Make();
  ASSERT_TRUE(svc.AddInstance("case", f.fuzz.db).ok());
  RequestRouter router(&svc, FixtureFactory(f));

  std::istringstream in(
      "{\"op\":\"query\",\"id\":1,\"instance\":\"case\"}\n"
      "{\"op\":\"stats\",\"id\":2}\n"
      "{\"op\":\"metrics\",\"id\":3}\n"
      "{\"op\":\"slowlog\",\"id\":4}\n");
  std::ostringstream out;
  EXPECT_EQ(4, RunBatch(&router, in, out));

  std::istringstream lines(out.str());
  std::string line;
  std::vector<service::JsonValue> replies;
  while (std::getline(lines, line)) {
    auto v = ParseJson(line);
    ASSERT_TRUE(v.ok()) << line;
    replies.push_back(std::move(*v));
  }
  ASSERT_EQ(4u, replies.size());

  // stats now carries the staleness fields.
  EXPECT_TRUE(replies[1].GetBool("ok", false).value());
  EXPECT_GE(replies[1].GetNumber("uptime_s", -1).value(), 0.0);
  EXPECT_GE(replies[1].GetInt("snapshot_seq", 0).value(), 1);
  EXPECT_GE(replies[1].GetInt("slow_queries", -1).value(), 1);

  // metrics splices the registry JSON; the registry is process-global, so
  // assert >= on the request counter rather than an exact value.
  EXPECT_TRUE(replies[2].GetBool("ok", false).value());
  const service::JsonValue* metrics = replies[2].Find("metrics");
  ASSERT_NE(nullptr, metrics);
  const service::JsonValue* counters = metrics->Find("counters");
  ASSERT_NE(nullptr, counters);
  double requests_total = 0;
  for (const auto& c : counters->array) {
    if (c.GetString("name", "").value() == "licm_requests_total") {
      requests_total += c.GetNumber("value", 0).value();
    }
  }
  EXPECT_GE(requests_total, 1.0);

  // slowlog: slo_ms = 0 captured the query; records are full objects.
  EXPECT_TRUE(replies[3].GetBool("ok", false).value());
  const service::JsonValue* slowlog = replies[3].Find("slowlog");
  ASSERT_NE(nullptr, slowlog);
  ASSERT_GE(slowlog->array.size(), 1u);
  EXPECT_EQ("case", slowlog->array[0].GetString("instance", "").value());
  EXPECT_GE(slowlog->array[0].GetNumber("total_ms", -1).value(), 0.0);
}

TEST(Transport, MutateVersionAndLoadVerbs) {
  QueryService svc({.num_workers = 1, .solver_threads = 1});
  ASSERT_TRUE(svc.AddInstance("case", TwoComponentDb()).ok());
  const rel::QueryNodePtr query = rel::CountStar(rel::Scan("t"));
  RequestRouter router(&svc, [query](const WireRequest&)
                                 -> Result<rel::QueryNodePtr> {
    return query;
  });
  router.set_loader([&svc](const std::string& name, const std::string&,
                           bool replace) -> Result<uint64_t> {
    LICM_RETURN_NOT_OK(
        svc.LoadInstance(name, TwoComponentDb(), std::nullopt, replace));
    return svc.VersionOf(name);
  });

  std::istringstream in(
      "{\"op\":\"query\",\"id\":1,\"instance\":\"case\"}\n"
      "{\"op\":\"version\",\"id\":2,\"instance\":\"case\"}\n"
      "{\"op\":\"mutate\",\"id\":3,\"instance\":\"case\",\"action\":\"edit\","
      "\"cindex\":1,\"cop\":\"ge\",\"rhs\":1}\n"
      "{\"op\":\"query\",\"id\":4,\"instance\":\"case\"}\n"
      "{\"op\":\"mutate\",\"id\":5,\"instance\":\"case\","
      "\"action\":\"append\",\"relation\":\"t\",\"row\":\"9,z\","
      "\"maybe\":true}\n"
      "{\"op\":\"mutate\",\"id\":6,\"instance\":\"case\","
      "\"action\":\"bogus\"}\n"
      "{\"op\":\"load\",\"id\":7,\"instance\":\"case\"}\n"
      "{\"op\":\"load\",\"id\":8,\"instance\":\"case\",\"replace\":true}\n"
      "{\"op\":\"version\",\"id\":9,\"instance\":\"case\"}\n"
      "{\"op\":\"stats\",\"id\":10}\n");
  std::ostringstream out;
  EXPECT_EQ(10, RunBatch(&router, in, out));

  std::istringstream lines(out.str());
  std::string line;
  std::vector<service::JsonValue> replies;
  while (std::getline(lines, line)) {
    auto v = ParseJson(line);
    ASSERT_TRUE(v.ok()) << line;
    replies.push_back(std::move(*v));
  }
  ASSERT_EQ(10u, replies.size());

  // Query before any mutation: version 1, bounds [2, 4].
  EXPECT_TRUE(replies[0].GetBool("ok", false).value());
  EXPECT_EQ(1, replies[0].GetInt("version", 0).value());
  EXPECT_EQ(2.0, replies[0].GetNumber("min", -1).value());
  EXPECT_EQ(4.0, replies[0].GetNumber("max", -1).value());
  // The version verb agrees.
  EXPECT_TRUE(replies[1].GetBool("ok", false).value());
  EXPECT_EQ("case", replies[1].GetString("instance", "").value());
  EXPECT_EQ(1, replies[1].GetInt("version", 0).value());
  // The edit committed version 2 and reports its dirty set.
  EXPECT_TRUE(replies[2].GetBool("ok", false).value());
  EXPECT_EQ(2, replies[2].GetInt("version", 0).value());
  EXPECT_EQ(1, replies[2].GetInt("cindex", -1).value());
  EXPECT_EQ(1, replies[2].GetInt("dirty_components", 0).value());
  EXPECT_EQ(2, replies[2].GetInt("total_components", 0).value());
  // Post-edit query: version 2, bounds [3, 5].
  EXPECT_EQ(2, replies[3].GetInt("version", 0).value());
  EXPECT_EQ(3.0, replies[3].GetNumber("min", -1).value());
  EXPECT_EQ(5.0, replies[3].GetNumber("max", -1).value());
  // The maybe-append allocated the next pool variable (b4).
  EXPECT_TRUE(replies[4].GetBool("ok", false).value());
  EXPECT_EQ(3, replies[4].GetInt("version", 0).value());
  EXPECT_EQ(1, replies[4].GetInt("appended", 0).value());
  const service::JsonValue* new_vars = replies[4].Find("new_vars");
  ASSERT_NE(nullptr, new_vars);
  ASSERT_EQ(1u, new_vars->array.size());
  EXPECT_EQ(4.0, new_vars->array[0].number);
  // Unknown action: typed error, nothing committed.
  EXPECT_FALSE(replies[5].GetBool("ok", true).value());
  EXPECT_NE(std::string::npos,
            replies[5].GetString("error", "").value().find("action"));
  // Load collision without replace: typed error pointing at the opt-in.
  EXPECT_FALSE(replies[6].GetBool("ok", true).value());
  EXPECT_NE(std::string::npos,
            replies[6].GetString("error", "").value().find("replace"));
  // load replace=true swaps the database and bumps the version.
  EXPECT_TRUE(replies[7].GetBool("ok", false).value());
  EXPECT_TRUE(replies[7].GetBool("replaced", false).value());
  EXPECT_EQ(4, replies[7].GetInt("version", 0).value());
  EXPECT_EQ(4, replies[8].GetInt("version", 0).value());
  // Stats: three commits (edit, append, replace-load), the instance's
  // version, and cross-version cache hits from the post-edit query.
  EXPECT_TRUE(replies[9].GetBool("ok", false).value());
  EXPECT_EQ(3, replies[9].GetInt("mutations", 0).value());
  const service::JsonValue* versions = replies[9].Find("versions");
  ASSERT_NE(nullptr, versions);
  EXPECT_EQ(4, versions->GetInt("case", 0).value());
  EXPECT_GE(replies[9].GetInt("cache_cross_version_hits", -1).value(), 1);
}

// Minimal blocking line client for the loopback test.
class TestClient {
 public:
  bool Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool SendRaw(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t w = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (w < 0 && errno == EINTR) continue;
      if (w <= 0) return false;
      sent += static_cast<size_t>(w);
    }
    return true;
  }
  Result<JsonValue> RecvReply() {
    while (buffer_.find('\n') == std::string::npos) {
      char chunk[1024];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return Status::IOError("connection closed");
      buffer_.append(chunk, static_cast<size_t>(n));
    }
    const size_t nl = buffer_.find('\n');
    std::string reply = buffer_.substr(0, nl);
    buffer_.erase(0, nl + 1);
    return ParseJson(reply);
  }
  Result<JsonValue> RoundTrip(const std::string& line) {
    std::string framed = line + "\n";
    if (::send(fd_, framed.data(), framed.size(), MSG_NOSIGNAL) !=
        static_cast<ssize_t>(framed.size())) {
      return Status::IOError("send failed");
    }
    while (buffer_.find('\n') == std::string::npos) {
      char chunk[1024];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return Status::IOError("connection closed");
      buffer_.append(chunk, static_cast<size_t>(n));
    }
    const size_t nl = buffer_.find('\n');
    std::string reply = buffer_.substr(0, nl);
    buffer_.erase(0, nl + 1);
    return ParseJson(reply);
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

TEST(Transport, TcpLoopbackSessionIncludingShutdown) {
  QueryService svc({.num_workers = 2, .solver_threads = 1});
  ServiceFixture f = ServiceFixture::Make();
  ASSERT_TRUE(svc.AddInstance("case", f.fuzz.db).ok());
  RequestRouter router(&svc, FixtureFactory(f));
  TcpServer server(&router);
  Status listening = server.Listen("127.0.0.1", 0);
  if (!listening.ok()) {
    GTEST_SKIP() << "cannot bind a loopback socket here: "
                 << listening.ToString();
  }
  ASSERT_GT(server.port(), 0);
  std::thread serve_thread([&] { EXPECT_TRUE(server.Serve().ok()); });

  {
    TestClient c1, c2;
    ASSERT_TRUE(c1.Connect(server.port()));
    ASSERT_TRUE(c2.Connect(server.port()));

    auto pong = c1.RoundTrip("{\"op\":\"ping\",\"id\":1}");
    ASSERT_TRUE(pong.ok()) << pong.status().ToString();
    EXPECT_TRUE(pong->GetBool("ok", false).value());
    EXPECT_FALSE(pong->GetString("git_sha", "").value().empty());

    auto names = c2.RoundTrip("{\"op\":\"instances\",\"id\":2}");
    ASSERT_TRUE(names.ok());
    const JsonValue* arr = names->Find("instances");
    ASSERT_NE(nullptr, arr);
    ASSERT_EQ(1u, arr->array.size());
    EXPECT_EQ("case", arr->array[0].string);

    // Both connections query concurrently; answers must match offline.
    auto q1 = c1.RoundTrip(
        "{\"op\":\"query\",\"id\":3,\"instance\":\"case\"}");
    auto q2 = c2.RoundTrip(
        "{\"op\":\"query\",\"id\":4,\"instance\":\"case\"}");
    for (const auto* q : {&q1, &q2}) {
      ASSERT_TRUE(q->ok()) << q->status().ToString();
      EXPECT_TRUE((*q)->GetBool("ok", false).value());
      EXPECT_EQ(f.exact_min, (*q)->GetNumber("min", -1e9).value());
      EXPECT_EQ(f.exact_max, (*q)->GetNumber("max", -1e9).value());
    }

    auto bye = c1.RoundTrip("{\"op\":\"shutdown\",\"id\":5}");
    ASSERT_TRUE(bye.ok());
    EXPECT_TRUE(bye->GetBool("shutting_down", false).value());
  }
  serve_thread.join();
}

// Regression test for short-read handling: the kernel may deliver a
// request line in arbitrarily small pieces, and several lines may land
// in one recv(). Both packetizations must behave exactly like whole-line
// delivery.
TEST(Transport, TcpSurvivesByteAtATimeAndPipelinedDelivery) {
  QueryService svc({.num_workers = 1, .solver_threads = 1});
  ServiceFixture f = ServiceFixture::Make();
  ASSERT_TRUE(svc.AddInstance("case", f.fuzz.db).ok());
  RequestRouter router(&svc, FixtureFactory(f));
  TcpServer server(&router);
  Status listening = server.Listen("127.0.0.1", 0);
  if (!listening.ok()) {
    GTEST_SKIP() << "cannot bind a loopback socket here: "
                 << listening.ToString();
  }
  std::thread serve_thread([&] { EXPECT_TRUE(server.Serve().ok()); });
  {
    TestClient c;
    ASSERT_TRUE(c.Connect(server.port()));

    // One byte per send() call.
    const std::string line =
        "{\"op\":\"query\",\"id\":21,\"instance\":\"case\"}\n";
    for (char ch : line) {
      ASSERT_TRUE(c.SendRaw(std::string(1, ch)));
    }
    auto dribbled = c.RecvReply();
    ASSERT_TRUE(dribbled.ok()) << dribbled.status().ToString();
    EXPECT_TRUE(dribbled->GetBool("ok", false).value());
    EXPECT_EQ(21, dribbled->GetInt("id", 0).value());
    EXPECT_EQ(f.exact_min, dribbled->GetNumber("min", -1e9).value());

    // Three requests in a single send(), plus a trailing fragment that
    // must stay buffered until its newline arrives.
    ASSERT_TRUE(c.SendRaw(
        "{\"op\":\"ping\",\"id\":22}\n"
        "{\"op\":\"query\",\"id\":23,\"instance\":\"case\"}\n"
        "{\"op\":\"ping\",\"id\":24}\n"
        "{\"op\":\"ping\","));
    for (int id = 22; id <= 24; ++id) {
      auto reply = c.RecvReply();
      ASSERT_TRUE(reply.ok()) << reply.status().ToString();
      EXPECT_TRUE(reply->GetBool("ok", false).value());
      EXPECT_EQ(id, reply->GetInt("id", 0).value());
    }
    ASSERT_TRUE(c.SendRaw("\"id\":25}\n"));
    auto tail = c.RecvReply();
    ASSERT_TRUE(tail.ok()) << tail.status().ToString();
    EXPECT_EQ(25, tail->GetInt("id", 0).value());
  }
  server.Stop();
  serve_thread.join();
}

}  // namespace
}  // namespace licm::service
