// Unit + property tests for the MIP branch & bound solver, presolve,
// propagation, decomposition, and the LP-format writer.
#include "solver/mip_solver.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "solver/components.h"
#include "solver/lp_format.h"
#include "solver/presolve.h"
#include "solver/propagation.h"

namespace licm::solver {
namespace {

// ---- Propagation ----

TEST(Propagation, FixesForcedBinary) {
  // b1 + b2 >= 2 over binaries forces both to 1.
  LinearProgram lp;
  VarId a = lp.AddBinary();
  VarId b = lp.AddBinary();
  lp.AddRow(Row{{{a, 1}, {b, 1}}, RowOp::kGe, 2});
  Domains d = Domains::FromProgram(lp);
  ASSERT_EQ(Propagate(lp, &d), PropagateResult::kFixpoint);
  EXPECT_DOUBLE_EQ(d.lower[a], 1.0);
  EXPECT_DOUBLE_EQ(d.lower[b], 1.0);
}

TEST(Propagation, DetectsInfeasibleCardinality) {
  LinearProgram lp;
  VarId a = lp.AddBinary();
  VarId b = lp.AddBinary();
  lp.AddRow(Row{{{a, 1}, {b, 1}}, RowOp::kGe, 3});
  Domains d = Domains::FromProgram(lp);
  EXPECT_EQ(Propagate(lp, &d), PropagateResult::kInfeasible);
}

TEST(Propagation, ChainsThroughImplications) {
  // a = 1, a - b <= 0 (a implies b), b - c <= 0: all forced to 1.
  LinearProgram lp;
  VarId a = lp.AddBinary();
  VarId b = lp.AddBinary();
  VarId c = lp.AddBinary();
  lp.AddRow(Row{{{a, 1}}, RowOp::kGe, 1});
  lp.AddRow(Row{{{a, 1}, {b, -1}}, RowOp::kLe, 0});
  lp.AddRow(Row{{{b, 1}, {c, -1}}, RowOp::kLe, 0});
  Domains d = Domains::FromProgram(lp);
  ASSERT_EQ(Propagate(lp, &d), PropagateResult::kFixpoint);
  EXPECT_DOUBLE_EQ(d.lower[c], 1.0);
}

TEST(Propagation, RoundsIntegerBounds) {
  // 2x <= 5 over integer x in [0, 10] -> x <= 2.
  LinearProgram lp;
  VarId x = lp.AddVariable(0, 10, true);
  lp.AddRow(Row{{{x, 2}}, RowOp::kLe, 5});
  Domains d = Domains::FromProgram(lp);
  ASSERT_EQ(Propagate(lp, &d), PropagateResult::kFixpoint);
  EXPECT_DOUBLE_EQ(d.upper[x], 2.0);
}

// ---- Presolve ----

TEST(Presolve, FixesAndSubstitutes) {
  LinearProgram lp;
  VarId a = lp.AddBinary();
  VarId b = lp.AddBinary();
  VarId c = lp.AddBinary();
  lp.SetObjectiveCoef(a, 1);
  lp.SetObjectiveCoef(b, 1);
  lp.SetObjectiveCoef(c, 1);
  lp.AddRow(Row{{{a, 1}}, RowOp::kEq, 1});          // fixes a = 1
  lp.AddRow(Row{{{a, 1}, {b, 1}}, RowOp::kLe, 1});  // then fixes b = 0
  PresolveResult pre = Presolve(lp);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_EQ(pre.stats.vars_fixed, 2u);
  EXPECT_EQ(pre.reduced.num_vars(), 1u);
  EXPECT_DOUBLE_EQ(pre.reduced.objective_constant(), 1.0);
  std::vector<double> x = pre.Postsolve({1.0});
  EXPECT_DOUBLE_EQ(x[a], 1.0);
  EXPECT_DOUBLE_EQ(x[b], 0.0);
  EXPECT_DOUBLE_EQ(x[c], 1.0);
}

TEST(Presolve, RemovesDuplicateAndRedundantRows) {
  LinearProgram lp;
  VarId a = lp.AddBinary();
  VarId b = lp.AddBinary();
  lp.AddRow(Row{{{a, 1}, {b, 1}}, RowOp::kLe, 1});
  lp.AddRow(Row{{{a, 1}, {b, 1}}, RowOp::kLe, 1});  // duplicate
  lp.AddRow(Row{{{a, 1}, {b, 1}}, RowOp::kLe, 5});  // redundant over box
  PresolveResult pre = Presolve(lp);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_EQ(pre.reduced.num_rows(), 1u);
  EXPECT_EQ(pre.stats.duplicate_rows, 1u);
  EXPECT_GE(pre.stats.rows_removed, 1u);
}

TEST(Presolve, TightensSameLhsInequalities) {
  LinearProgram lp;
  VarId a = lp.AddBinary();
  VarId b = lp.AddBinary();
  VarId c = lp.AddBinary();
  lp.SetObjectiveCoef(a, 1);
  lp.SetObjectiveCoef(b, 1);
  lp.SetObjectiveCoef(c, 1);
  // Same LHS twice with different rhs: only the binding rhs survives.
  lp.AddRow(Row{{{a, 1}, {b, 1}, {c, 1}}, RowOp::kLe, 2});
  lp.AddRow(Row{{{a, 1}, {b, 1}, {c, 1}}, RowOp::kLe, 1});
  PresolveResult pre = Presolve(lp);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_EQ(pre.reduced.num_rows(), 1u);
  EXPECT_EQ(pre.stats.rows_tightened, 1u);
  EXPECT_DOUBLE_EQ(pre.reduced.rows()[0].rhs, 1.0);

  // The other direction: >= keeps the larger rhs. (Three variables so
  // neither row lets bound propagation fix anything first.)
  LinearProgram ge;
  VarId x = ge.AddBinary();
  VarId y = ge.AddBinary();
  VarId z = ge.AddBinary();
  ge.AddRow(Row{{{x, 1}, {y, 1}, {z, 1}}, RowOp::kGe, 1});
  ge.AddRow(Row{{{x, 1}, {y, 1}, {z, 1}}, RowOp::kGe, 2});
  PresolveResult pge = Presolve(ge);
  ASSERT_FALSE(pge.infeasible);
  ASSERT_EQ(pge.reduced.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(pge.reduced.rows()[0].rhs, 2.0);
}

TEST(Presolve, ConflictingEqualitiesAreInfeasible) {
  LinearProgram lp;
  VarId a = lp.AddBinary();
  VarId b = lp.AddBinary();
  VarId c = lp.AddBinary();
  lp.AddRow(Row{{{a, 1}, {b, 1}, {c, -1}}, RowOp::kEq, 1});
  lp.AddRow(Row{{{a, 1}, {b, 1}, {c, -1}}, RowOp::kEq, 0});
  EXPECT_TRUE(Presolve(lp).infeasible);
}

TEST(Presolve, DetectsInfeasibility) {
  LinearProgram lp;
  VarId a = lp.AddBinary();
  lp.AddRow(Row{{{a, 1}}, RowOp::kGe, 1});
  lp.AddRow(Row{{{a, 1}}, RowOp::kLe, 0});
  EXPECT_TRUE(Presolve(lp).infeasible);
}

// ---- Decomposition ----

TEST(Decompose, SplitsIndependentBlocks) {
  LinearProgram lp;
  VarId a = lp.AddBinary();
  VarId b = lp.AddBinary();
  VarId c = lp.AddBinary();
  VarId d = lp.AddBinary();
  VarId lone = lp.AddBinary();  // appears in no row
  lp.AddRow(Row{{{a, 1}, {b, 1}}, RowOp::kLe, 1});
  lp.AddRow(Row{{{c, 1}, {d, 1}}, RowOp::kGe, 1});
  auto comps = Decompose(lp);
  ASSERT_EQ(comps.size(), 3u);
  size_t total_vars = 0, total_rows = 0;
  for (const auto& comp : comps) {
    total_vars += comp.program.num_vars();
    total_rows += comp.program.num_rows();
  }
  EXPECT_EQ(total_vars, 5u);
  EXPECT_EQ(total_rows, 2u);
  (void)lone;
}

// ---- MIP end-to-end ----

TEST(Mip, CardinalityBlockBounds) {
  // Example 1 of the paper: 5 possible records, between 1 and 2 are true.
  // max count = 2, min count = 1.
  LinearProgram lp;
  std::vector<Term> sum;
  for (int i = 0; i < 5; ++i) {
    VarId b = lp.AddBinary();
    lp.SetObjectiveCoef(b, 1);
    sum.push_back(Term{b, 1});
  }
  lp.AddRow(Row{sum, RowOp::kGe, 1});
  lp.AddRow(Row{sum, RowOp::kLe, 2});
  MipSolver solver;
  MipResult mx = solver.Solve(lp, Sense::kMaximize);
  ASSERT_EQ(mx.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(mx.objective, 2.0);
  EXPECT_TRUE(lp.IsFeasible(mx.solution));
  MipResult mn = solver.Solve(lp, Sense::kMinimize);
  ASSERT_EQ(mn.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(mn.objective, 1.0);
  EXPECT_TRUE(lp.IsFeasible(mn.solution));
}

TEST(Mip, PermutationAssignment) {
  // 3x3 bijection; objective picks the diagonal: max = 3 only if the
  // identity is chosen; with row/col equalities the max over any weights
  // equals a max-weight perfect matching.
  LinearProgram lp;
  VarId b[3][3];
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) b[i][j] = lp.AddBinary();
  for (int i = 0; i < 3; ++i) {
    Row r1, r2;
    for (int j = 0; j < 3; ++j) {
      r1.terms.push_back(Term{b[i][j], 1});
      r2.terms.push_back(Term{b[j][i], 1});
    }
    r1.op = r2.op = RowOp::kEq;
    r1.rhs = r2.rhs = 1;
    lp.AddRow(std::move(r1));
    lp.AddRow(std::move(r2));
  }
  // Weights: diag gets 1, off-diag 0. Perfect matching max = 3, min = 0.
  for (int i = 0; i < 3; ++i) lp.SetObjectiveCoef(b[i][i], 1);
  MipSolver solver;
  MipResult mx = solver.Solve(lp, Sense::kMaximize);
  ASSERT_EQ(mx.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(mx.objective, 3.0);
  MipResult mn = solver.Solve(lp, Sense::kMinimize);
  ASSERT_EQ(mn.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(mn.objective, 0.0);
}

TEST(Mip, InfeasibleReported) {
  LinearProgram lp;
  VarId a = lp.AddBinary();
  VarId b = lp.AddBinary();
  lp.AddRow(Row{{{a, 1}, {b, 1}}, RowOp::kEq, 1});
  lp.AddRow(Row{{{a, 1}, {b, 1}}, RowOp::kEq, 2});
  // Make both rows non-trivially propagatable by adding a third variable.
  MipSolver solver;
  EXPECT_EQ(solver.Solve(lp, Sense::kMaximize).status,
            SolveStatus::kInfeasible);
}

TEST(Mip, KnapsackIntegrality) {
  // max 10a + 6b + 4c st 5a + 4b + 3c <= 8 over binaries.
  // LP relax = 14.5 (a = 1, b = 3/4); integer optimum = 10 + 4 = 14 (a, c).
  LinearProgram lp;
  VarId a = lp.AddBinary();
  VarId b = lp.AddBinary();
  VarId c = lp.AddBinary();
  lp.SetObjectiveCoef(a, 10);
  lp.SetObjectiveCoef(b, 6);
  lp.SetObjectiveCoef(c, 4);
  lp.AddRow(Row{{{a, 5}, {b, 4}, {c, 3}}, RowOp::kLe, 8});
  MipResult r = MipSolver().Solve(lp, Sense::kMaximize);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(r.objective, 14.0);
}

TEST(Mip, GeneralIntegerVariables) {
  // max x + y st 2x + 3y <= 12, x in [0,4] int, y in [0,3] int.
  // Optimum: x=4, y=1 -> 5 (2*4+3*1=11<=12). Check also x=3,y=2 -> 5.
  LinearProgram lp;
  VarId x = lp.AddVariable(0, 4, true);
  VarId y = lp.AddVariable(0, 3, true);
  lp.SetObjectiveCoef(x, 1);
  lp.SetObjectiveCoef(y, 1);
  lp.AddRow(Row{{{x, 2}, {y, 3}}, RowOp::kLe, 12});
  MipResult r = MipSolver().Solve(lp, Sense::kMaximize);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(r.objective, 5.0);
}

TEST(Mip, NodeLimitYieldsValidInterval) {
  // Hard-ish assignment-flavoured instance with a tiny node budget: the
  // solver must degrade to kTimeLimit with objective <= true opt <= bound.
  Rng rng(7);
  const int n = 9;
  LinearProgram lp;
  std::vector<std::vector<VarId>> b(n, std::vector<VarId>(n));
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      b[i][j] = lp.AddBinary();
      lp.SetObjectiveCoef(b[i][j], static_cast<double>(rng.Uniform(50)));
    }
  for (int i = 0; i < n; ++i) {
    Row r1, r2;
    for (int j = 0; j < n; ++j) {
      r1.terms.push_back(Term{b[i][j], 1});
      r2.terms.push_back(Term{b[j][i], 1});
    }
    r1.op = r2.op = RowOp::kEq;
    r1.rhs = r2.rhs = 1;
    lp.AddRow(std::move(r1));
    lp.AddRow(std::move(r2));
  }
  MipOptions tight;
  tight.max_nodes_per_component = 5;
  tight.use_lp_bound = false;
  MipResult limited = MipSolver(tight).Solve(lp, Sense::kMaximize);
  MipResult full = MipSolver().Solve(lp, Sense::kMaximize);
  ASSERT_EQ(full.status, SolveStatus::kOptimal);
  if (limited.status == SolveStatus::kTimeLimit) {
    if (limited.has_solution) {
      EXPECT_LE(limited.objective, full.objective + 1e-6);
    }
    EXPECT_GE(limited.best_bound + 1e-6, full.objective);
  }
}

TEST(Mip, SolverOptionTogglesAgree) {
  // The same instance must give identical optima across feature toggles.
  Rng rng(21);
  LinearProgram lp;
  const int groups = 6, per = 4;
  for (int g = 0; g < groups; ++g) {
    std::vector<Term> sum;
    for (int i = 0; i < per; ++i) {
      VarId v = lp.AddBinary();
      lp.SetObjectiveCoef(v, static_cast<double>(rng.UniformInt(-2, 4)));
      sum.push_back(Term{v, 1});
    }
    lp.AddRow(Row{sum, RowOp::kGe, 1});
    lp.AddRow(Row{sum, RowOp::kLe, 2});
  }
  MipResult base = MipSolver().Solve(lp, Sense::kMaximize);
  ASSERT_EQ(base.status, SolveStatus::kOptimal);
  for (int mask = 0; mask < 8; ++mask) {
    MipOptions o;
    o.use_presolve = mask & 1;
    o.use_decomposition = mask & 2;
    o.use_lp_bound = mask & 4;
    MipResult r = MipSolver(o).Solve(lp, Sense::kMaximize);
    ASSERT_EQ(r.status, SolveStatus::kOptimal) << "mask=" << mask;
    EXPECT_DOUBLE_EQ(r.objective, base.objective) << "mask=" << mask;
    EXPECT_TRUE(lp.IsFeasible(r.solution)) << "mask=" << mask;
  }
}

TEST(Mip, ParallelComponentsMatchSequential) {
  // Many independent cardinality blocks: parallel and sequential solves
  // must agree exactly.
  Rng rng(77);
  LinearProgram lp;
  for (int g = 0; g < 40; ++g) {
    std::vector<Term> sum;
    for (int i = 0; i < 5; ++i) {
      VarId v = lp.AddBinary();
      lp.SetObjectiveCoef(v, static_cast<double>(rng.UniformInt(-3, 5)));
      sum.push_back(Term{v, 1});
    }
    lp.AddRow(Row{sum, RowOp::kGe, 1});
    lp.AddRow(Row{sum, RowOp::kLe, 3});
  }
  MipResult seq = MipSolver().Solve(lp, Sense::kMaximize);
  MipOptions par_opts;
  par_opts.num_threads = 4;
  MipResult par = MipSolver(par_opts).Solve(lp, Sense::kMaximize);
  ASSERT_EQ(seq.status, SolveStatus::kOptimal);
  ASSERT_EQ(par.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(par.objective, seq.objective);
  EXPECT_TRUE(lp.IsFeasible(par.solution));
  EXPECT_EQ(par.stats.components, seq.stats.components);
}

// ---- MipResult::Gap ----

TEST(MipResultGap, NoSolutionIsInfinite) {
  MipResult r;
  r.status = SolveStatus::kTimeLimit;
  r.has_solution = false;
  r.best_bound = 17.0;  // a proved bound without an incumbent
  EXPECT_EQ(r.Gap(), kInfinity);
}

TEST(MipResultGap, OptimalIsZero) {
  LinearProgram lp;
  VarId a = lp.AddBinary();
  VarId b = lp.AddBinary();
  lp.SetObjectiveCoef(a, 3.0);
  lp.SetObjectiveCoef(b, 2.0);
  lp.AddRow(Row{{{a, 1}, {b, 1}}, RowOp::kLe, 1});
  MipResult r = MipSolver().Solve(lp, Sense::kMaximize);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(r.Gap(), 0.0);
}

TEST(MipResultGap, AbsoluteInBothSenses) {
  MipResult r;
  r.has_solution = true;
  r.objective = 10.0;
  r.best_bound = 12.5;  // maximizing: bound above incumbent
  EXPECT_DOUBLE_EQ(r.Gap(), 2.5);
  r.best_bound = 7.5;  // minimizing: bound below incumbent
  EXPECT_DOUBLE_EQ(r.Gap(), 2.5);
}

// ---- Property sweep: brute force vs solver on random binary programs ----

class MipRandom : public ::testing::TestWithParam<int> {};

TEST_P(MipRandom, MatchesBruteForce) {
  Rng rng(1000 + GetParam());
  const int n = 3 + static_cast<int>(rng.Uniform(8));  // 3..10 binaries
  const int m = 1 + static_cast<int>(rng.Uniform(6));
  LinearProgram lp;
  for (int v = 0; v < n; ++v) {
    VarId id = lp.AddBinary();
    lp.SetObjectiveCoef(id, static_cast<double>(rng.UniformInt(-3, 3)));
  }
  for (int r = 0; r < m; ++r) {
    Row row;
    for (int v = 0; v < n; ++v) {
      int64_t coef = rng.UniformInt(-2, 2);
      if (coef != 0 && rng.Bernoulli(0.7)) {
        row.terms.push_back(
            Term{static_cast<VarId>(v), static_cast<double>(coef)});
      }
    }
    if (row.terms.empty()) continue;
    row.op = static_cast<RowOp>(rng.Uniform(3));
    row.rhs = static_cast<double>(rng.UniformInt(-2, 4));
    lp.AddRow(std::move(row));
  }

  double best_max = -1e18, best_min = 1e18;
  bool feasible = false;
  for (int mask = 0; mask < (1 << n); ++mask) {
    std::vector<double> x(n);
    for (int v = 0; v < n; ++v) x[v] = (mask >> v) & 1;
    if (lp.IsFeasible(x)) {
      feasible = true;
      const double obj = lp.EvalObjective(x);
      best_max = std::max(best_max, obj);
      best_min = std::min(best_min, obj);
    }
  }

  MipSolver solver;
  MipResult mx = solver.Solve(lp, Sense::kMaximize);
  MipResult mn = solver.Solve(lp, Sense::kMinimize);
  if (!feasible) {
    EXPECT_EQ(mx.status, SolveStatus::kInfeasible);
    EXPECT_EQ(mn.status, SolveStatus::kInfeasible);
  } else {
    ASSERT_EQ(mx.status, SolveStatus::kOptimal);
    ASSERT_EQ(mn.status, SolveStatus::kOptimal);
    EXPECT_DOUBLE_EQ(mx.objective, best_max);
    EXPECT_DOUBLE_EQ(mn.objective, best_min);
    EXPECT_TRUE(lp.IsFeasible(mx.solution));
    EXPECT_TRUE(lp.IsFeasible(mn.solution));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MipRandom, ::testing::Range(0, 120));

// ---- LP format ----

TEST(LpFormat, RendersAllSections) {
  LinearProgram lp;
  VarId a = lp.AddBinary("alpha");
  VarId x = lp.AddVariable(0, 10, true);
  VarId y = lp.AddVariable(-1, 2.5, false);
  lp.SetObjectiveCoef(a, 2);
  lp.SetObjectiveCoef(y, -1);
  lp.AddRow(Row{{{a, 1}, {x, 3}}, RowOp::kLe, 7});
  lp.AddRow(Row{{{x, 1}, {y, -2}}, RowOp::kGe, -1});
  lp.AddRow(Row{{{a, 1}, {y, 1}}, RowOp::kEq, 1});
  std::string text = ToLpFormat(lp, Sense::kMaximize);
  EXPECT_NE(text.find("Maximize"), std::string::npos);
  EXPECT_NE(text.find("Subject To"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("Binary"), std::string::npos);
  EXPECT_NE(text.find("General"), std::string::npos);
  EXPECT_NE(text.find("Bounds"), std::string::npos);
  EXPECT_NE(text.find("End"), std::string::npos);
  EXPECT_NE(text.find(" = 1"), std::string::npos);
}

}  // namespace
}  // namespace licm::solver
