// Unit tests for the two-phase bounded simplex (LP relaxations).
#include "solver/simplex.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "solver/linear_program.h"

namespace licm::solver {
namespace {

TEST(Simplex, UnconstrainedBoxMaximum) {
  LinearProgram lp;
  VarId x = lp.AddVariable(0, 5, false);
  VarId y = lp.AddVariable(1, 3, false);
  lp.SetObjectiveCoef(x, 2.0);
  lp.SetObjectiveCoef(y, -1.0);
  LpSolution s = SolveLpRelaxation(lp, Sense::kMaximize);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2 * 5 - 1 * 1, 1e-7);
  EXPECT_NEAR(s.values[x], 5.0, 1e-7);
  EXPECT_NEAR(s.values[y], 1.0, 1e-7);
}

TEST(Simplex, ClassicTwoVariableLp) {
  // max 3x + 5y  st  x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
  // Optimum (2, 6) with value 36 (textbook Wyndor Glass problem).
  LinearProgram lp;
  VarId x = lp.AddVariable(0, kInfinity, false);
  VarId y = lp.AddVariable(0, kInfinity, false);
  lp.SetObjectiveCoef(x, 3);
  lp.SetObjectiveCoef(y, 5);
  lp.AddRow(Row{{{x, 1}}, RowOp::kLe, 4});
  lp.AddRow(Row{{{y, 2}}, RowOp::kLe, 12});
  lp.AddRow(Row{{{x, 3}, {y, 2}}, RowOp::kLe, 18});
  LpSolution s = SolveLpRelaxation(lp, Sense::kMaximize);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 36.0, 1e-6);
  EXPECT_NEAR(s.values[x], 2.0, 1e-6);
  EXPECT_NEAR(s.values[y], 6.0, 1e-6);
}

TEST(Simplex, MinimizationWithGeRows) {
  // min 2x + 3y  st  x + y >= 4, x + 3y >= 6, x,y >= 0. Optimum at (3, 1),
  // value 9.
  LinearProgram lp;
  VarId x = lp.AddVariable(0, kInfinity, false);
  VarId y = lp.AddVariable(0, kInfinity, false);
  lp.SetObjectiveCoef(x, 2);
  lp.SetObjectiveCoef(y, 3);
  lp.AddRow(Row{{{x, 1}, {y, 1}}, RowOp::kGe, 4});
  lp.AddRow(Row{{{x, 1}, {y, 3}}, RowOp::kGe, 6});
  LpSolution s = SolveLpRelaxation(lp, Sense::kMinimize);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 9.0, 1e-6);
}

TEST(Simplex, EqualityRow) {
  // max x + y  st  x + y = 3, x <= 2, y <= 2 -> 3.
  LinearProgram lp;
  VarId x = lp.AddVariable(0, 2, false);
  VarId y = lp.AddVariable(0, 2, false);
  lp.SetObjectiveCoef(x, 1);
  lp.SetObjectiveCoef(y, 1);
  lp.AddRow(Row{{{x, 1}, {y, 1}}, RowOp::kEq, 3});
  LpSolution s = SolveLpRelaxation(lp, Sense::kMaximize);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-6);
  EXPECT_NEAR(s.values[x] + s.values[y], 3.0, 1e-6);
}

TEST(Simplex, DetectsInfeasibility) {
  LinearProgram lp;
  VarId x = lp.AddVariable(0, 1, false);
  lp.AddRow(Row{{{x, 1}}, RowOp::kGe, 2});
  LpSolution s = SolveLpRelaxation(lp, Sense::kMaximize);
  EXPECT_EQ(s.status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsConflictingEqualities) {
  LinearProgram lp;
  VarId x = lp.AddVariable(0, 10, false);
  VarId y = lp.AddVariable(0, 10, false);
  lp.AddRow(Row{{{x, 1}, {y, 1}}, RowOp::kEq, 4});
  lp.AddRow(Row{{{x, 1}, {y, 1}}, RowOp::kEq, 6});
  LpSolution s = SolveLpRelaxation(lp, Sense::kMaximize);
  EXPECT_EQ(s.status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LinearProgram lp;
  VarId x = lp.AddVariable(0, kInfinity, false);
  lp.SetObjectiveCoef(x, 1);
  LpSolution s = SolveLpRelaxation(lp, Sense::kMaximize);
  EXPECT_EQ(s.status, SolveStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // x - y <= -1 with x,y in [0, 5]: max x -> x = 4 (y = 5).
  LinearProgram lp;
  VarId x = lp.AddVariable(0, 5, false);
  VarId y = lp.AddVariable(0, 5, false);
  lp.SetObjectiveCoef(x, 1);
  lp.AddRow(Row{{{x, 1}, {y, -1}}, RowOp::kLe, -1});
  LpSolution s = SolveLpRelaxation(lp, Sense::kMaximize);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 4.0, 1e-6);
}

TEST(Simplex, NonzeroLowerBounds) {
  // x in [2, 7], y in [3, 4], x + y <= 8: max x + 2y -> y = 4, x = 4.
  LinearProgram lp;
  VarId x = lp.AddVariable(2, 7, false);
  VarId y = lp.AddVariable(3, 4, false);
  lp.SetObjectiveCoef(x, 1);
  lp.SetObjectiveCoef(y, 2);
  lp.AddRow(Row{{{x, 1}, {y, 1}}, RowOp::kLe, 8});
  LpSolution s = SolveLpRelaxation(lp, Sense::kMaximize);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 12.0, 1e-6);
}

TEST(Simplex, ObjectiveConstantIncluded) {
  LinearProgram lp;
  VarId x = lp.AddVariable(0, 1, false);
  lp.SetObjectiveCoef(x, 1);
  lp.AddObjectiveConstant(10.0);
  LpSolution s = SolveLpRelaxation(lp, Sense::kMaximize);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 11.0, 1e-6);
}

// The LP relaxation of a cardinality-constrained LICM block:
// b1..b5 in [0,1], 1 <= sum b_i <= 2. Max sum = 2, min sum = 1.
TEST(Simplex, CardinalityRelaxation) {
  LinearProgram lp;
  std::vector<Term> terms;
  for (int i = 0; i < 5; ++i) {
    VarId b = lp.AddVariable(0, 1, false);
    lp.SetObjectiveCoef(b, 1);
    terms.push_back(Term{b, 1.0});
  }
  lp.AddRow(Row{terms, RowOp::kGe, 1});
  lp.AddRow(Row{terms, RowOp::kLe, 2});
  LpSolution mx = SolveLpRelaxation(lp, Sense::kMaximize);
  ASSERT_EQ(mx.status, SolveStatus::kOptimal);
  EXPECT_NEAR(mx.objective, 2.0, 1e-6);
  LpSolution mn = SolveLpRelaxation(lp, Sense::kMinimize);
  ASSERT_EQ(mn.status, SolveStatus::kOptimal);
  EXPECT_NEAR(mn.objective, 1.0, 1e-6);
}

// Degenerate problem known to cycle without anti-cycling safeguards
// (Beale's example).
TEST(Simplex, BealeDegenerateCycling) {
  LinearProgram lp;
  VarId x1 = lp.AddVariable(0, kInfinity, false);
  VarId x2 = lp.AddVariable(0, kInfinity, false);
  VarId x3 = lp.AddVariable(0, kInfinity, false);
  VarId x4 = lp.AddVariable(0, kInfinity, false);
  lp.SetObjectiveCoef(x1, 0.75);
  lp.SetObjectiveCoef(x2, -150);
  lp.SetObjectiveCoef(x3, 0.02);
  lp.SetObjectiveCoef(x4, -6);
  lp.AddRow(Row{{{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, RowOp::kLe, 0});
  lp.AddRow(Row{{{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, RowOp::kLe, 0});
  lp.AddRow(Row{{{x3, 1}}, RowOp::kLe, 1});
  LpSolution s = SolveLpRelaxation(lp, Sense::kMaximize);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 0.05, 1e-6);
}

// Property sweep: random small LPs over binary boxes; simplex relaxation
// objective must upper-bound every integer point's objective (maximize) and
// the returned vertex must satisfy all rows.
class SimplexRandomLp : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomLp, RelaxationBoundsAllIntegerPoints) {
  Rng rng(GetParam());
  const int n = 2 + static_cast<int>(rng.Uniform(5));  // 2..6 vars
  const int m = 1 + static_cast<int>(rng.Uniform(5));
  LinearProgram lp;
  for (int v = 0; v < n; ++v) {
    VarId id = lp.AddVariable(0, 1, false);
    lp.SetObjectiveCoef(id, rng.UniformInt(-3, 3));
  }
  for (int r = 0; r < m; ++r) {
    Row row;
    for (int v = 0; v < n; ++v) {
      int64_t c = rng.UniformInt(-2, 2);
      if (c != 0) row.terms.push_back(Term{static_cast<VarId>(v),
                                           static_cast<double>(c)});
    }
    row.op = static_cast<RowOp>(rng.Uniform(3));
    row.rhs = static_cast<double>(rng.UniformInt(-1, 3));
    if (row.terms.empty()) continue;
    lp.AddRow(std::move(row));
  }
  LpSolution s = SolveLpRelaxation(lp, Sense::kMaximize);
  if (s.status == SolveStatus::kOptimal) {
    EXPECT_TRUE(lp.IsFeasible(s.values, 1e-5));
  }
  // Enumerate all 0/1 points.
  bool any_feasible = false;
  double best = -1e18;
  for (int mask = 0; mask < (1 << n); ++mask) {
    std::vector<double> x(n);
    for (int v = 0; v < n; ++v) x[v] = (mask >> v) & 1;
    if (lp.IsFeasible(x)) {
      any_feasible = true;
      best = std::max(best, lp.EvalObjective(x));
    }
  }
  if (any_feasible) {
    ASSERT_EQ(s.status, SolveStatus::kOptimal)
        << "simplex must find the nonempty relaxation feasible";
    EXPECT_GE(s.objective + 1e-5, best);
  }
  if (s.status == SolveStatus::kInfeasible) {
    EXPECT_FALSE(any_feasible);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomLp, ::testing::Range(0, 60));

}  // namespace
}  // namespace licm::solver
