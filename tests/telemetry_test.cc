// Tests for the telemetry subsystem (common/telemetry.h) and the Chrome
// trace exporter/validator (common/trace_export.h): zero recording while
// disabled, session restarts clearing old events, span nesting in the
// exported JSON, and an end-to-end parallel solver trace carrying worker
// spans, steal/donate events, and per-component progress instants.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>
#include <string>

#include "common/rng.h"
#include "common/telemetry.h"
#include "common/trace_export.h"
#include "solver/mip_solver.h"

namespace licm::telemetry {
namespace {

// Same hard single-component instance as parallel_search_test: a dense
// n-by-n assignment problem whose search tree is deep enough to donate
// subtrees.
solver::LinearProgram PermutationInstance(int n, uint64_t seed) {
  Rng rng(seed);
  solver::LinearProgram lp;
  std::vector<std::vector<solver::VarId>> b(n, std::vector<solver::VarId>(n));
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      b[i][j] = lp.AddBinary();
      lp.SetObjectiveCoef(b[i][j], static_cast<double>(rng.Uniform(50)));
    }
  for (int i = 0; i < n; ++i) {
    solver::Row r1, r2;
    for (int j = 0; j < n; ++j) {
      r1.terms.push_back(solver::Term{b[i][j], 1});
      r2.terms.push_back(solver::Term{b[j][i], 1});
    }
    r1.op = r2.op = solver::RowOp::kEq;
    r1.rhs = r2.rhs = 1;
    lp.AddRow(std::move(r1));
    lp.AddRow(std::move(r2));
  }
  return lp;
}

TEST(Telemetry, DisabledRecordsNothing) {
  StopTracing();
  ASSERT_FALSE(Enabled());
  const size_t before = Snapshot().size();
  Instant("test", "ignored");
  Counter("test", "ignored_counter", 1.0);
  {
    LICM_TRACE_SPAN("test", "ignored_span");
  }
  EXPECT_EQ(Snapshot().size(), before);
}

TEST(Telemetry, RestartClearsPreviousSession) {
  StartTracing();
  Instant("test", "old_a");
  Instant("test", "old_b");
  EXPECT_EQ(Snapshot().size(), 2u);
  StartTracing();  // restart: the two events above are gone
  Instant("test", "fresh");
  std::vector<Event> events = Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "fresh");
  StopTracing();
  // Events stay readable after StopTracing until the next session.
  EXPECT_EQ(Snapshot().size(), 1u);
}

TEST(Telemetry, SnapshotOrdersEnclosingSpansFirst) {
  StartTracing();
  {
    ScopedSpan outer("test", "outer");
    outer.AddArg("depth", 0);
    {
      ScopedSpan inner("test", "inner");
      inner.AddArg("depth", 1);
    }
  }
  StopTracing();
  std::vector<Event> events = Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_GE(events[1].ts_ns, events[0].ts_ns);
  EXPECT_LE(events[1].ts_ns + events[1].dur_ns,
            events[0].ts_ns + events[0].dur_ns);
}

TEST(Telemetry, ExportValidatesAndDropsNonFiniteArgs) {
  StartTracing();
  {
    ScopedSpan span("test", "span_with_args");
    span.AddArg("finite", 2.5);
    span.AddArg("infinite", std::numeric_limits<double>::infinity());
    span.AddArg("nan", std::nan(""));
  }
  Instant("test", "instant_event", {{"x", 1.0}});
  Counter("test", "counter_track", 7.0);
  StopTracing();
  std::string json = ChromeTraceJson();
  EXPECT_TRUE(ValidateChromeTrace(json).ok()) << json;
  EXPECT_NE(json.find("span_with_args"), std::string::npos);
  EXPECT_NE(json.find("\"finite\""), std::string::npos);
  // JSON has no representation for non-finite numbers; those args vanish.
  EXPECT_EQ(json.find("\"infinite\""), std::string::npos);
  EXPECT_EQ(json.find("\"nan\""), std::string::npos);
}

TEST(Telemetry, SummarizeSpansAggregatesByName) {
  StartTracing();
  { LICM_TRACE_SPAN("test", "phase_a"); }
  { LICM_TRACE_SPAN("test", "phase_a"); }
  const int64_t mark = NowNs();
  { LICM_TRACE_SPAN("test", "phase_b"); }
  StopTracing();
  bool saw_a = false, saw_b = false;
  for (const PhaseSummary& p : SummarizeSpans()) {
    if (p.name == "phase_a") {
      saw_a = true;
      EXPECT_EQ(p.count, 2);
      EXPECT_EQ(p.category, "test");
    }
    if (p.name == "phase_b") saw_b = true;
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
  // The since-mark view must exclude the earlier phase_a spans.
  for (const PhaseSummary& p : SummarizeSpans(mark)) {
    EXPECT_NE(p.name, "phase_a");
  }
}

TEST(Telemetry, WriteChromeTraceRoundTripsThroughFileValidator) {
  StartTracing();
  { LICM_TRACE_SPAN("test", "file_span"); }
  StopTracing();
  const std::string path = ::testing::TempDir() + "licm_trace_test.json";
  ASSERT_TRUE(WriteChromeTrace(path).ok());
  size_t num_events = 0;
  EXPECT_TRUE(ValidateChromeTraceFile(path, &num_events).ok());
  EXPECT_GE(num_events, 1u);
  std::remove(path.c_str());
}

TEST(TraceValidator, RejectsMalformedInput) {
  EXPECT_FALSE(ValidateChromeTrace("not json").ok());
  EXPECT_FALSE(ValidateChromeTrace("{\"displayTimeUnit\":\"ms\"}").ok());
  // An event missing its required ph field.
  EXPECT_FALSE(ValidateChromeTrace(
                   R"({"traceEvents":[{"name":"a","cat":"c","ts":0,)"
                   R"("pid":1,"tid":1}]})")
                   .ok());
}

TEST(TraceValidator, RejectsPartiallyOverlappingSpansOnOneThread) {
  // Two spans of one thread overlapping without nesting: [0,10) vs [5,15).
  const char* bad =
      R"({"traceEvents":[)"
      R"({"name":"a","cat":"c","ph":"X","ts":0,"dur":10,"pid":1,"tid":1},)"
      R"({"name":"b","cat":"c","ph":"X","ts":5,"dur":10,"pid":1,"tid":1}]})";
  EXPECT_FALSE(ValidateChromeTrace(bad).ok());
  // The same two spans on different threads are fine.
  const char* good =
      R"({"traceEvents":[)"
      R"({"name":"a","cat":"c","ph":"X","ts":0,"dur":10,"pid":1,"tid":1},)"
      R"({"name":"b","cat":"c","ph":"X","ts":5,"dur":10,"pid":1,"tid":2}]})";
  EXPECT_TRUE(ValidateChromeTrace(good).ok());
}

// End-to-end: a traced parallel solve of the hard permutation instance
// must leave behind worker-thread spans, at least one steal-or-donate
// scheduler event, and per-component gap progress instants — the trace
// shape DESIGN.md's Telemetry section documents.
TEST(Telemetry, ParallelSolveTraceCarriesWorkerAndProgressEvents) {
  solver::LinearProgram lp = PermutationInstance(9, 7);
  solver::MipOptions opt;
  opt.num_threads = 4;
  opt.split_node_threshold = 16;
  opt.use_lp_bound = false;
  opt.trace_progress_nodes = 64;
  StartTracing();
  solver::MipResult result =
      solver::MipSolver(opt).Solve(lp, solver::Sense::kMaximize);
  StopTracing();
  ASSERT_EQ(result.status, solver::SolveStatus::kOptimal);
  ASSERT_GT(result.stats.subtree_splits, 0);
  EXPECT_GT(result.stats.cpu_seconds, 0.0);

  std::vector<Event> events = Snapshot();
  int64_t steal_or_donate = 0, progress = 0, spawns = 0;
  std::set<uint32_t> span_tids;
  for (const Event& e : events) {
    const std::string name = e.name;
    if (name == "steal" || name == "donate") ++steal_or_donate;
    if (name == "worker_spawn") ++spawns;
    if (e.phase == 'X') span_tids.insert(e.tid);
    if (name == "progress") {
      ++progress;
      // Progress instants carry the component id, node count, and bound.
      std::set<std::string> keys;
      for (const Arg& a : e.args) {
        if (a.key != nullptr) keys.insert(a.key);
      }
      EXPECT_TRUE(keys.count("component"));
      EXPECT_TRUE(keys.count("nodes"));
      EXPECT_TRUE(keys.count("best_bound"));
    }
  }
  // subtree_splits > 0 guarantees donations were traced.
  EXPECT_GT(steal_or_donate, 0);
  EXPECT_GT(spawns, 0);
  // 64-node progress cadence on a search deep enough to split.
  EXPECT_GT(progress, 0);
  // Donated subtrees ran (and traced spans) on at least one worker thread
  // in addition to the calling thread.
  EXPECT_GE(span_tids.size(), 2u);

  // The whole parallel trace must still be valid, properly nested JSON.
  EXPECT_TRUE(ValidateChromeTrace(ChromeTraceJson()).ok());
  EXPECT_EQ(DroppedEvents(), 0);
}

}  // namespace
}  // namespace licm::telemetry
