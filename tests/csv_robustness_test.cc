// Robustness of the CSV loader against malformed input: tolerated
// variations (CRLF endings, blank and whitespace-only rows) round-trip to
// the same dataset, while structural malformations (trailing commas,
// empty cells, trailing garbage) come back as typed kInvalidArgument
// errors rather than silently misparsed datasets.
#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "data/csv.h"

namespace licm::data {
namespace {

// Writes `body` as the transaction file and a minimal valid prices file
// next to it, returning the transaction path.
std::string WritePair(const std::string& name, const std::string& body,
                      const std::string& prices = "item,price\n0,5\n1,7\n") {
  const std::string path = ::testing::TempDir() + "/" + name;
  {
    std::ofstream f(path);
    f << body;
  }
  {
    std::ofstream pf(path + ".prices");
    pf << prices;
  }
  return path;
}

TEST(CsvRobustness, CrlfLineEndingsAreTolerated) {
  const std::string path =
      WritePair("crlf.csv", "tid,loc,item\r\n1,10,0\r\n1,10,1\r\n2,20,1\r\n",
                "item,price\r\n0,5\r\n1,7\r\n");
  auto loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->transactions.size(), 2u);
  EXPECT_EQ(loaded->transactions[0].tid, 1);
  EXPECT_EQ(loaded->transactions[0].items.size(), 2u);
  EXPECT_EQ(loaded->price[1], 7);
}

TEST(CsvRobustness, BlankAndWhitespaceOnlyRowsAreSkipped) {
  const std::string path = WritePair(
      "blank.csv", "tid,loc,item\n\n1,10,0\n   \n\t\n2,20,1\n  \t \n");
  auto loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->transactions.size(), 2u);
}

TEST(CsvRobustness, TrailingCommaIsATypedError) {
  const std::string path =
      WritePair("trailing.csv", "tid,loc,item\n1,10,0,\n");
  auto loaded = LoadCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("trailing comma"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST(CsvRobustness, EmptyCellIsATypedError) {
  const std::string path = WritePair("empty_cell.csv", "tid,loc,item\n1,,0\n");
  auto loaded = LoadCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("empty CSV cell"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST(CsvRobustness, TrailingGarbageInCellIsATypedError) {
  // strtoll would happily read "10abc" as 10 — the classic silent
  // misparse this loader must refuse.
  const std::string path =
      WritePair("garbage.csv", "tid,loc,item\n1,10abc,0\n");
  auto loaded = LoadCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("trailing garbage"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST(CsvRobustness, NonNumericCellIsATypedError) {
  const std::string path = WritePair("alpha.csv", "tid,loc,item\n1,x,0\n");
  auto loaded = LoadCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvRobustness, WrongColumnCountIsATypedError) {
  const std::string path = WritePair("cols.csv", "tid,loc,item\n1,10\n");
  auto loaded = LoadCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvRobustness, PaddedNumericCellsStillParse) {
  const std::string path =
      WritePair("padded.csv", "tid,loc,item\n1, 10 ,0\n");
  auto loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->transactions.size(), 1u);
  EXPECT_EQ(loaded->transactions[0].location, 10);
}

TEST(CsvRobustness, MalformedPricesRowIsATypedError) {
  const std::string path = WritePair("prices_bad.csv", "tid,loc,item\n1,10,0\n",
                                     "item,price\n0,5,\n");
  auto loaded = LoadCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("trailing comma"),
            std::string::npos);
}

}  // namespace
}  // namespace licm::data
