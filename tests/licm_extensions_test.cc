// Tests for the extension operators beyond the paper's core: mid-tree SUM
// predicates (weighted Algorithm 4) and top-level MIN/MAX aggregates with
// case-based bounds. Each is validated against exhaustive possible-world
// enumeration.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "licm/evaluator.h"
#include "licm/ops.h"
#include "licm/worlds.h"
#include "relational/engine.h"

namespace licm {
namespace {

using rel::CmpOp;
using rel::Value;
using rel::ValueType;

rel::Schema PricedSchema() {
  return rel::Schema({{"tid", ValueType::kInt},
                      {"item", ValueType::kInt},
                      {"price", ValueType::kInt}});
}

// ---- SumPredicate unit behaviour ----

TEST(SumPredicate, DeterministicEngineMatchesHandComputation) {
  rel::Database db;
  rel::Relation r(PricedSchema());
  // T1 prices: 3 + 5 = 8; T2: 2; T3: 6 + 6(dup item? distinct items) = 12.
  r.AppendUnchecked({int64_t{1}, int64_t{10}, int64_t{3}});
  r.AppendUnchecked({int64_t{1}, int64_t{11}, int64_t{5}});
  r.AppendUnchecked({int64_t{2}, int64_t{10}, int64_t{2}});
  r.AppendUnchecked({int64_t{3}, int64_t{12}, int64_t{6}});
  r.AppendUnchecked({int64_t{3}, int64_t{13}, int64_t{6}});
  LICM_CHECK_OK(db.Add("r", std::move(r)));
  auto q = rel::CountStar(
      rel::SumPredicate(rel::Scan("r"), "tid", "price", CmpOp::kGe, 8));
  auto v = rel::EvaluateAggregate(*q, db);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_DOUBLE_EQ(*v, 2.0);  // T1 (8) and T3 (12)
}

TEST(SumPredicate, LicmEncodingTracksWeightedSum) {
  // One group: certain weight 2, maybe weights 3 (b0) and 5 (b1).
  // SUM >= 6 holds iff 2 + 3 b0 + 5 b1 >= 6 iff b1 = 1 or (b0 = 1 and ...)
  // -> exactly when 3 b0 + 5 b1 >= 4.
  LicmDatabase db;
  LicmRelation r(PricedSchema());
  BVar b0 = db.pool().New(), b1 = db.pool().New();
  r.AppendUnchecked({int64_t{1}, int64_t{0}, int64_t{2}}, Ext::Certain());
  r.AppendUnchecked({int64_t{1}, int64_t{1}, int64_t{3}}, Ext::Maybe(b0));
  r.AppendUnchecked({int64_t{1}, int64_t{2}, int64_t{5}}, Ext::Maybe(b1));
  OpContext ctx{&db.pool(), &db.constraints()};
  auto out = SumPredicateOp(r, "tid", "price", CmpOp::kGe, 6, ctx);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  ASSERT_FALSE(out->ext(0).certain());
  const BVar derived = out->ext(0).var();
  auto worlds = EnumerateValidAssignments(db.constraints(), db.pool().size());
  ASSERT_TRUE(worlds.ok());
  ASSERT_EQ(worlds->size(), 4u);
  for (const auto& a : *worlds) {
    const int sum = 2 + 3 * a[b0] + 5 * a[b1];
    EXPECT_EQ(a[derived], static_cast<uint8_t>(sum >= 6));
  }
}

TEST(SumPredicate, CertainAndExcludedCases) {
  LicmDatabase db;
  LicmRelation r(PricedSchema());
  BVar b = db.pool().New();
  // T1: certain sum 10 -> SUM >= 8 certain.
  r.AppendUnchecked({int64_t{1}, int64_t{0}, int64_t{10}}, Ext::Certain());
  // T2: max possible 5 -> SUM >= 8 impossible.
  r.AppendUnchecked({int64_t{2}, int64_t{0}, int64_t{5}}, Ext::Maybe(b));
  OpContext ctx{&db.pool(), &db.constraints()};
  auto out = SumPredicateOp(r, "tid", "price", CmpOp::kGe, 8, ctx);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_TRUE(out->ext(0).certain());
}

TEST(SumPredicate, RejectsNegativeAndNonIntWeights) {
  LicmDatabase db;
  OpContext ctx{&db.pool(), &db.constraints()};
  LicmRelation r(PricedSchema());
  r.AppendUnchecked({int64_t{1}, int64_t{0}, int64_t{-2}}, Ext::Certain());
  EXPECT_FALSE(SumPredicateOp(r, "tid", "price", CmpOp::kGe, 1, ctx).ok());
  LicmRelation s(rel::Schema(
      {{"tid", ValueType::kInt}, {"w", ValueType::kDouble}}));
  s.AppendUnchecked({int64_t{1}, 0.5}, Ext::Certain());
  EXPECT_FALSE(SumPredicateOp(s, "tid", "w", CmpOp::kGe, 1, ctx).ok());
}

// ---- MIN/MAX unit behaviour ----

TEST(MinMax, DeterministicEngine) {
  rel::Database db;
  rel::Relation r(PricedSchema());
  r.AppendUnchecked({int64_t{1}, int64_t{0}, int64_t{7}});
  r.AppendUnchecked({int64_t{2}, int64_t{1}, int64_t{3}});
  LICM_CHECK_OK(db.Add("r", std::move(r)));
  EXPECT_DOUBLE_EQ(
      *rel::EvaluateAggregate(*rel::Max(rel::Scan("r"), "price"), db), 7.0);
  EXPECT_DOUBLE_EQ(
      *rel::EvaluateAggregate(*rel::Min(rel::Scan("r"), "price"), db), 3.0);
  rel::Database empty_db;
  LICM_CHECK_OK(empty_db.Add("r", rel::Relation(PricedSchema())));
  EXPECT_FALSE(
      rel::EvaluateAggregate(*rel::Max(rel::Scan("r"), "price"), empty_db)
          .ok());
}

TEST(MinMax, BoundsOverMutuallyExclusiveTuples) {
  // Prices 3 and 9, mutually exclusive: MAX is 3 or 9; MIN likewise.
  LicmDatabase db;
  LicmRelation r(PricedSchema());
  BVar b0 = db.pool().New(), b1 = db.pool().New();
  r.AppendUnchecked({int64_t{1}, int64_t{0}, int64_t{3}}, Ext::Maybe(b0));
  r.AppendUnchecked({int64_t{2}, int64_t{1}, int64_t{9}}, Ext::Maybe(b1));
  db.constraints().AddMutualExclusion(b0, b1);
  LICM_CHECK_OK(db.AddRelation("r", std::move(r)));

  auto mx = AnswerAggregate(*rel::Max(rel::Scan("r"), "price"), db);
  ASSERT_TRUE(mx.ok()) << mx.status().ToString();
  EXPECT_TRUE(mx->is_minmax);
  EXPECT_DOUBLE_EQ(mx->minmax.lo, 3.0);
  EXPECT_DOUBLE_EQ(mx->minmax.hi, 9.0);
  EXPECT_FALSE(mx->minmax.may_be_empty);  // exactly one always present

  auto mn = AnswerAggregate(*rel::Min(rel::Scan("r"), "price"), db);
  ASSERT_TRUE(mn.ok());
  EXPECT_DOUBLE_EQ(mn->minmax.lo, 3.0);
  EXPECT_DOUBLE_EQ(mn->minmax.hi, 9.0);
}

TEST(MinMax, CertainTuplePinsTheTameSide) {
  // Certain price 5 plus maybe price 9: MAX in [5, 9], never empty.
  LicmDatabase db;
  LicmRelation r(PricedSchema());
  BVar b = db.pool().New();
  r.AppendUnchecked({int64_t{1}, int64_t{0}, int64_t{5}}, Ext::Certain());
  r.AppendUnchecked({int64_t{2}, int64_t{1}, int64_t{9}}, Ext::Maybe(b));
  LICM_CHECK_OK(db.AddRelation("r", std::move(r)));
  auto mx = AnswerAggregate(*rel::Max(rel::Scan("r"), "price"), db);
  ASSERT_TRUE(mx.ok());
  EXPECT_DOUBLE_EQ(mx->minmax.lo, 5.0);
  EXPECT_DOUBLE_EQ(mx->minmax.hi, 9.0);
  EXPECT_FALSE(mx->minmax.may_be_empty);
}

TEST(MinMax, DetectsPossibleAndCertainEmptiness) {
  LicmDatabase db;
  LicmRelation r(PricedSchema());
  BVar b = db.pool().New();
  r.AppendUnchecked({int64_t{1}, int64_t{0}, int64_t{5}}, Ext::Maybe(b));
  LICM_CHECK_OK(db.AddRelation("r", std::move(r)));
  auto mx = AnswerAggregate(*rel::Max(rel::Scan("r"), "price"), db);
  ASSERT_TRUE(mx.ok());
  EXPECT_TRUE(mx->minmax.may_be_empty);
  EXPECT_FALSE(mx->minmax.always_empty);

  // Force the tuple out: always empty.
  LicmDatabase db2;
  LicmRelation r2(PricedSchema());
  BVar b2 = db2.pool().New();
  r2.AppendUnchecked({int64_t{1}, int64_t{0}, int64_t{5}}, Ext::Maybe(b2));
  db2.constraints().AddFix(b2, 0);
  LICM_CHECK_OK(db2.AddRelation("r", std::move(r2)));
  auto mx2 = AnswerAggregate(*rel::Max(rel::Scan("r"), "price"), db2);
  ASSERT_TRUE(mx2.ok());
  EXPECT_TRUE(mx2->minmax.always_empty);
}

// ---- Oracle sweeps ----

// Random priced LICM databases; SumPredicate and MIN/MAX answers must
// match exhaustive enumeration.
class ExtensionOracle : public ::testing::TestWithParam<int> {};

struct PricedDb {
  LicmDatabase db;
  uint32_t num_vars = 0;
};

PricedDb MakePricedDb(Rng* rng) {
  PricedDb out;
  LicmRelation r(PricedSchema());
  std::vector<BVar> vars;
  const int tids = 2 + static_cast<int>(rng->Uniform(3));
  int64_t item = 0;
  for (int tid = 1; tid <= tids; ++tid) {
    const int n = 1 + static_cast<int>(rng->Uniform(3));
    for (int i = 0; i < n; ++i) {
      rel::Tuple t{static_cast<int64_t>(tid), item++,
                   rng->UniformInt(0, 6)};
      if (rng->Bernoulli(0.3)) {
        r.AppendUnchecked(std::move(t), Ext::Certain());
      } else {
        BVar b = out.db.pool().New();
        vars.push_back(b);
        r.AppendUnchecked(std::move(t), Ext::Maybe(b));
      }
    }
  }
  if (vars.size() >= 2 && rng->Bernoulli(0.6)) {
    int64_t z1 = rng->UniformInt(0, 1);
    out.db.constraints().AddCardinality(
        vars, z1, rng->UniformInt(z1, static_cast<int64_t>(vars.size())));
  }
  out.num_vars = out.db.pool().size();
  LICM_CHECK_OK(out.db.AddRelation("r", std::move(r)));
  return out;
}

TEST_P(ExtensionOracle, SumPredicateMatchesEnumeration) {
  Rng rng(0x5dc000 + GetParam());
  PricedDb pd = MakePricedDb(&rng);
  const CmpOp ops[] = {CmpOp::kLe, CmpOp::kGe, CmpOp::kLt, CmpOp::kGt,
                       CmpOp::kEq};
  auto q = rel::CountStar(rel::SumPredicate(
      rel::Scan("r"), "tid", "price", ops[rng.Uniform(5)],
      rng.UniformInt(0, 10)));

  auto assignments =
      EnumerateValidAssignments(pd.db.constraints(), pd.num_vars);
  ASSERT_TRUE(assignments.ok());
  if (assignments->empty()) return;
  double lo = 1e300, hi = -1e300;
  for (const auto& a : *assignments) {
    auto v = rel::EvaluateAggregate(*q, pd.db.Instantiate(a));
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    lo = std::min(lo, *v);
    hi = std::max(hi, *v);
  }
  auto ans = AnswerAggregate(*q, pd.db);
  ASSERT_TRUE(ans.ok()) << ans.status().ToString();
  EXPECT_DOUBLE_EQ(ans->bounds.min.value, lo) << q->ToString();
  EXPECT_DOUBLE_EQ(ans->bounds.max.value, hi) << q->ToString();
}

TEST_P(ExtensionOracle, MinMaxMatchesEnumeration) {
  Rng rng(0x31a000 + GetParam());
  PricedDb pd = MakePricedDb(&rng);
  const bool is_max = rng.Bernoulli(0.5);
  auto q = is_max ? rel::Max(rel::Scan("r"), "price")
                  : rel::Min(rel::Scan("r"), "price");

  auto assignments =
      EnumerateValidAssignments(pd.db.constraints(), pd.num_vars);
  ASSERT_TRUE(assignments.ok());
  if (assignments->empty()) return;
  double lo = 1e300, hi = -1e300;
  bool any_nonempty = false, any_empty = false;
  for (const auto& a : *assignments) {
    rel::Database world = pd.db.Instantiate(a);
    auto v = rel::EvaluateAggregate(*q, world);
    if (!v.ok()) {  // empty world relation
      any_empty = true;
      continue;
    }
    any_nonempty = true;
    lo = std::min(lo, *v);
    hi = std::max(hi, *v);
  }
  auto ans = AnswerAggregate(*q, pd.db);
  ASSERT_TRUE(ans.ok()) << ans.status().ToString();
  EXPECT_EQ(ans->minmax.may_be_empty, any_empty);
  EXPECT_EQ(ans->minmax.always_empty, !any_nonempty);
  if (any_nonempty) {
    EXPECT_DOUBLE_EQ(ans->minmax.lo, lo) << q->ToString();
    EXPECT_DOUBLE_EQ(ans->minmax.hi, hi) << q->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtensionOracle, ::testing::Range(0, 80));

}  // namespace
}  // namespace licm
