// Tests for the LICM model and operators, built around the paper's own
// running examples (Figures 2-4, Examples 6-8).
#include "licm/ops.h"

#include <gtest/gtest.h>

#include "licm/aggregate.h"
#include "licm/evaluator.h"
#include "licm/worlds.h"

namespace licm {
namespace {

using rel::CmpOp;
using rel::Value;
using rel::ValueType;

rel::Schema TransItemSchema() {
  return rel::Schema(
      {{"tid", ValueType::kInt}, {"item", ValueType::kString}});
}

Value V(int64_t x) { return Value(x); }
Value V(const char* s) { return Value(std::string(s)); }

// Figure 2(c): transaction T1 = {Alcohol, Shampoo}; Alcohol generalizes to
// {Beer, Wine, Liquor} with b1 + b2 + b3 >= 1; Shampoo is certain.
LicmDatabase Figure2c() {
  LicmDatabase db;
  LicmRelation r(TransItemSchema());
  std::vector<BVar> alcohol;
  for (const char* item : {"beer", "wine", "liquor"}) {
    BVar b = db.pool().New();
    alcohol.push_back(b);
    r.AppendUnchecked({int64_t{1}, std::string(item)}, Ext::Maybe(b));
  }
  r.AppendUnchecked({int64_t{1}, std::string("shampoo")}, Ext::Certain());
  db.constraints().AddCardinality(alcohol, 1, 3);
  LICM_CHECK_OK(db.AddRelation("trans_item", std::move(r)));
  return db;
}

// Figure 4(b): the relation used by Examples 7 and 8.
LicmDatabase Figure4b(std::vector<BVar>* vars_out = nullptr) {
  LicmDatabase db;
  LicmRelation r(TransItemSchema());
  std::vector<BVar> vars;
  auto maybe = [&](int64_t tid, const char* item) {
    BVar b = db.pool().New();
    vars.push_back(b);
    r.AppendUnchecked({tid, std::string(item)}, Ext::Maybe(b));
  };
  maybe(1, "pregnancy_test");  // b1
  maybe(1, "diapers");         // b2
  maybe(1, "shampoo");         // b3
  r.AppendUnchecked({int64_t{2}, std::string("wine")}, Ext::Certain());
  maybe(2, "shampoo");         // b6
  maybe(3, "pregnancy_test");  // b7
  LICM_CHECK_OK(db.AddRelation("trans_item", std::move(r)));
  if (vars_out) *vars_out = vars;
  return db;
}

// ---- Constraint primitives ----

TEST(Constraint, CardinalityClampsVacuousSides) {
  ConstraintSet cs;
  cs.AddCardinality({0, 1, 2}, 0, 3);  // vacuous both sides
  EXPECT_EQ(cs.size(), 0u);
  cs.AddCardinality({0, 1, 2}, 1, 3);  // only lower side
  EXPECT_EQ(cs.size(), 1u);
  cs.AddCardinality({0, 1, 2}, 1, 2);
  EXPECT_EQ(cs.size(), 3u);
}

TEST(Constraint, CorrelationSemantics) {
  // Enumerate assignments and check Example 5's correlations.
  ConstraintSet mutex;
  mutex.AddMutualExclusion(0, 1);
  auto worlds = EnumerateValidAssignments(mutex, 2);
  ASSERT_TRUE(worlds.ok());
  EXPECT_EQ(worlds->size(), 2u);  // 01, 10

  ConstraintSet coexist;
  coexist.AddCoexistence(0, 1);
  worlds = EnumerateValidAssignments(coexist, 2);
  ASSERT_TRUE(worlds.ok());
  EXPECT_EQ(worlds->size(), 2u);  // 00, 11

  ConstraintSet implies;
  implies.AddImplication(0, 1);
  worlds = EnumerateValidAssignments(implies, 2);
  ASSERT_TRUE(worlds.ok());
  EXPECT_EQ(worlds->size(), 3u);  // all but 10
}

TEST(Constraint, AndLinkTruthTable) {
  ConstraintSet cs;
  cs.AddAnd(2, 0, 1);
  auto worlds = EnumerateValidAssignments(cs, 3);
  ASSERT_TRUE(worlds.ok());
  // Deterministic lineage: for each of 4 input combinations, exactly one
  // output value survives -> 4 valid assignments.
  ASSERT_EQ(worlds->size(), 4u);
  for (const auto& a : *worlds) {
    EXPECT_EQ(a[2], a[0] & a[1]);
  }
}

TEST(Constraint, OrLinkTruthTable) {
  ConstraintSet cs;
  cs.AddOr(3, {0, 1, 2});
  auto worlds = EnumerateValidAssignments(cs, 4);
  ASSERT_TRUE(worlds.ok());
  ASSERT_EQ(worlds->size(), 8u);
  for (const auto& a : *worlds) {
    EXPECT_EQ(a[3], a[0] | a[1] | a[2]);
  }
}

TEST(Constraint, ToStringReadable) {
  LinearConstraint c{{{0, 1}, {1, 1}, {2, -2}}, ConstraintOp::kGe, 1};
  EXPECT_EQ(c.ToString(), "b0 + b1 - 2 b2 >= 1");
}

// ---- Figure 2(c): generalization block ----

TEST(Figure2, ItemCountBounds) {
  LicmDatabase db = Figure2c();
  auto ans = AnswerAggregate(*rel::CountStar(rel::Scan("trans_item")), db);
  ASSERT_TRUE(ans.ok());
  EXPECT_TRUE(ans->bounds.min.exact);
  EXPECT_TRUE(ans->bounds.max.exact);
  EXPECT_DOUBLE_EQ(ans->bounds.min.value, 2.0);  // shampoo + 1 alcohol
  EXPECT_DOUBLE_EQ(ans->bounds.max.value, 4.0);  // all three + shampoo
}

TEST(Figure2, WorldEnumerationMatchesSemantics) {
  LicmDatabase db = Figure2c();
  const LicmRelation& r = *db.GetRelation("trans_item").value();
  auto worlds = EnumerateWorlds(r, db.constraints(), db.pool().size());
  ASSERT_TRUE(worlds.ok());
  EXPECT_EQ(worlds->size(), 7u);  // non-empty subsets of {beer,wine,liquor}
  for (const auto& w : *worlds) {
    EXPECT_GE(w.size(), 2u);
    EXPECT_LE(w.size(), 4u);
  }
}

// ---- Example 6 / Figure 3: intersection ----

TEST(Example6, IntersectionLineage) {
  LicmDatabase db;
  LicmRelation r1(TransItemSchema());
  BVar b1 = db.pool().New(), b2 = db.pool().New();
  r1.AppendUnchecked({int64_t{1}, std::string("wine")}, Ext::Maybe(b1));
  r1.AppendUnchecked({int64_t{1}, std::string("liquor")}, Ext::Maybe(b2));
  r1.AppendUnchecked({int64_t{2}, std::string("beer")}, Ext::Certain());
  db.constraints().AddCardinality({b1, b2}, 1, 2);

  LicmRelation r2(TransItemSchema());
  BVar b3 = db.pool().New(), b4 = db.pool().New();
  r2.AppendUnchecked({int64_t{1}, std::string("wine")}, Ext::Maybe(b3));
  r2.AppendUnchecked({int64_t{2}, std::string("beer")}, Ext::Maybe(b4));

  OpContext ctx{&db.pool(), &db.constraints()};
  auto out = IntersectOp(r1, r2, ctx);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  // (T1, wine) gets a fresh AND variable; (T2, beer) reuses b4 because the
  // left side is certain.
  EXPECT_FALSE(out->ext(0).certain());
  EXPECT_EQ(out->ext(1), Ext::Maybe(b4));

  // Check the AND semantics by enumeration: b5 = b1 AND b3 in all worlds.
  const BVar b5 = out->ext(0).var();
  auto worlds = EnumerateValidAssignments(db.constraints(), db.pool().size());
  ASSERT_TRUE(worlds.ok());
  ASSERT_FALSE(worlds->empty());
  for (const auto& a : *worlds) {
    EXPECT_EQ(a[b5], a[b1] & a[b3]);
  }
}

// ---- Example 7: projection ----

TEST(Example7, ProjectionCases) {
  std::vector<BVar> vars;
  LicmDatabase db = Figure4b(&vars);
  OpContext ctx{&db.pool(), &db.constraints()};
  const LicmRelation& r = *db.GetRelation("trans_item").value();
  auto out = ProjectOp(r, {"tid"}, ctx);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 3u);

  // T1: new OR variable over {b1, b2, b3}.
  EXPECT_FALSE(out->ext(0).certain());
  EXPECT_GE(out->ext(0).var(), vars.back());
  // T2: certain because of (T2, wine, 1).
  EXPECT_TRUE(out->ext(1).certain());
  // T3: unique source tuple, reuses b7 (the Example 7 optimization).
  EXPECT_EQ(out->ext(2), Ext::Maybe(vars[4]));

  // OR semantics by enumeration.
  const BVar b8 = out->ext(0).var();
  auto worlds = EnumerateValidAssignments(db.constraints(), db.pool().size());
  ASSERT_TRUE(worlds.ok());
  for (const auto& a : *worlds) {
    EXPECT_EQ(a[b8], a[vars[0]] | a[vars[1]] | a[vars[2]]);
  }
}

// ---- Example 8: COUNT predicate ----

TEST(Example8, CountPredicateEncoding) {
  std::vector<BVar> vars;
  LicmDatabase db = Figure4b(&vars);
  // Query: transactions with >= 2 health-care items, where health care =
  // {diapers, pregnancy_test, shampoo}.
  auto q = rel::CountStar(rel::CountPredicate(
      rel::Select(rel::Scan("trans_item"),
                  {{"item", CmpOp::kNe, V("wine")}}),
      "tid", CmpOp::kGe, 2));
  auto ans = AnswerAggregate(*q, db);
  ASSERT_TRUE(ans.ok());
  // Only T1 can have >= 2 health-care items (it has three maybe items);
  // T2 and T3 have at most one.
  EXPECT_DOUBLE_EQ(ans->bounds.min.value, 0.0);
  EXPECT_DOUBLE_EQ(ans->bounds.max.value, 1.0);
  EXPECT_TRUE(ans->bounds.min.exact);
  EXPECT_TRUE(ans->bounds.max.exact);
}

TEST(CountPredicate, CertainAndExcludedCases) {
  LicmDatabase db;
  LicmRelation r(TransItemSchema());
  // T1: two certain items -> COUNT >= 2 certainly satisfied.
  r.AppendUnchecked({int64_t{1}, std::string("a")}, Ext::Certain());
  r.AppendUnchecked({int64_t{1}, std::string("b")}, Ext::Certain());
  // T2: one certain item -> COUNT >= 2 impossible.
  r.AppendUnchecked({int64_t{2}, std::string("a")}, Ext::Certain());
  // T3: one certain + one maybe -> variable case.
  BVar b = db.pool().New();
  r.AppendUnchecked({int64_t{3}, std::string("a")}, Ext::Certain());
  r.AppendUnchecked({int64_t{3}, std::string("b")}, Ext::Maybe(b));

  OpContext ctx{&db.pool(), &db.constraints()};
  auto out = CountPredicateOp(r, "tid", CmpOp::kGe, 2, ctx);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);  // T1 certain, T3 variable; T2 excluded
  EXPECT_TRUE(out->ext(0).certain());
  EXPECT_FALSE(out->ext(1).certain());

  // The derived variable must track b exactly (count = 1 + b >= 2 iff b).
  const BVar derived = out->ext(1).var();
  auto worlds = EnumerateValidAssignments(db.constraints(), db.pool().size());
  ASSERT_TRUE(worlds.ok());
  for (const auto& a : *worlds) {
    EXPECT_EQ(a[derived], a[b]);
  }
}

TEST(CountPredicate, CountLeEncoding) {
  // Group with 2 maybes and 1 certain; COUNT <= 1 holds iff both maybes
  // are absent.
  LicmDatabase db;
  LicmRelation r(TransItemSchema());
  BVar b1 = db.pool().New(), b2 = db.pool().New();
  r.AppendUnchecked({int64_t{1}, std::string("a")}, Ext::Certain());
  r.AppendUnchecked({int64_t{1}, std::string("b")}, Ext::Maybe(b1));
  r.AppendUnchecked({int64_t{1}, std::string("c")}, Ext::Maybe(b2));
  OpContext ctx{&db.pool(), &db.constraints()};
  auto out = CountPredicateOp(r, "tid", CmpOp::kLe, 1, ctx);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  ASSERT_FALSE(out->ext(0).certain());
  const BVar derived = out->ext(0).var();
  auto worlds = EnumerateValidAssignments(db.constraints(), db.pool().size());
  ASSERT_TRUE(worlds.ok());
  for (const auto& a : *worlds) {
    EXPECT_EQ(a[derived], static_cast<uint8_t>(a[b1] + a[b2] == 0));
  }
}

TEST(CountPredicate, CountEqViaAnd) {
  // COUNT = 1 over two maybe tuples: holds iff exactly one is present.
  LicmDatabase db;
  LicmRelation r(TransItemSchema());
  BVar b1 = db.pool().New(), b2 = db.pool().New();
  r.AppendUnchecked({int64_t{1}, std::string("a")}, Ext::Maybe(b1));
  r.AppendUnchecked({int64_t{1}, std::string("b")}, Ext::Maybe(b2));
  OpContext ctx{&db.pool(), &db.constraints()};
  auto out = CountPredicateOp(r, "tid", CmpOp::kEq, 1, ctx);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  const BVar derived = out->ext(0).var();
  auto worlds = EnumerateValidAssignments(db.constraints(), db.pool().size());
  ASSERT_TRUE(worlds.ok());
  for (const auto& a : *worlds) {
    EXPECT_EQ(a[derived], static_cast<uint8_t>(a[b1] + a[b2] == 1));
  }
}

TEST(CountPredicate, NeUnimplemented) {
  LicmDatabase db;
  LicmRelation r(TransItemSchema());
  r.AppendUnchecked({int64_t{1}, std::string("a")}, Ext::Certain());
  OpContext ctx{&db.pool(), &db.constraints()};
  auto out = CountPredicateOp(r, "tid", CmpOp::kNe, 1, ctx);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kUnimplemented);
}

// ---- MergeDuplicates ----

TEST(MergeDuplicates, NoDuplicatesIsIdentity) {
  LicmDatabase db;
  LicmRelation r(TransItemSchema());
  BVar b = db.pool().New();
  r.AppendUnchecked({int64_t{1}, std::string("a")}, Ext::Maybe(b));
  r.AppendUnchecked({int64_t{2}, std::string("a")}, Ext::Certain());
  OpContext ctx{&db.pool(), &db.constraints()};
  auto out = MergeDuplicates(r, ctx);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
  EXPECT_EQ(db.pool().size(), 1u);  // no new variables
}

TEST(MergeDuplicates, OrMergesDuplicateTuples) {
  LicmDatabase db;
  LicmRelation r(TransItemSchema());
  BVar b1 = db.pool().New(), b2 = db.pool().New();
  r.AppendUnchecked({int64_t{1}, std::string("a")}, Ext::Maybe(b1));
  r.AppendUnchecked({int64_t{1}, std::string("a")}, Ext::Maybe(b2));
  OpContext ctx{&db.pool(), &db.constraints()};
  auto out = MergeDuplicates(r, ctx);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  const BVar merged = out->ext(0).var();
  auto worlds = EnumerateValidAssignments(db.constraints(), db.pool().size());
  ASSERT_TRUE(worlds.ok());
  for (const auto& a : *worlds) {
    EXPECT_EQ(a[merged], a[b1] | a[b2]);
  }
}

// ---- Completeness (Theorem 1) ----

TEST(Completeness, RoundTripsWorldSets) {
  // Build three explicit worlds over a tiny schema and check the encoder
  // reproduces exactly that world set.
  rel::Schema s({{"x", ValueType::kInt}});
  auto world = [&](std::vector<int64_t> xs) {
    rel::Relation w(s);
    for (int64_t x : xs) w.AppendUnchecked({x});
    return w;
  };
  std::vector<rel::Relation> worlds = {world({1, 2}), world({2, 3}),
                                       world({1, 2, 3})};
  auto db = EncodeWorlds(worlds, "r");
  ASSERT_TRUE(db.ok());
  const LicmRelation& r = *db->GetRelation("r").value();
  auto round = EnumerateWorlds(r, db->constraints(), db->pool().size());
  ASSERT_TRUE(round.ok());
  ASSERT_EQ(round->size(), worlds.size());
  for (const auto& w : worlds) {
    bool found = false;
    for (const auto& got : *round) found |= got.SetEquals(w);
    EXPECT_TRUE(found);
  }
}

TEST(Completeness, SingleWorldFixesEverything) {
  rel::Schema s({{"x", ValueType::kInt}});
  rel::Relation w(s);
  w.AppendUnchecked({int64_t{7}});
  auto db = EncodeWorlds({w}, "r");
  ASSERT_TRUE(db.ok());
  auto worlds = EnumerateWorlds(*db->GetRelation("r").value(),
                                db->constraints(), db->pool().size());
  ASSERT_TRUE(worlds.ok());
  ASSERT_EQ(worlds->size(), 1u);
  EXPECT_TRUE((*worlds)[0].SetEquals(w));
}

TEST(Completeness, RejectsOversizedUniverse) {
  rel::Schema s({{"x", ValueType::kInt}});
  rel::Relation w(s);
  for (int64_t i = 0; i < 21; ++i) w.AppendUnchecked({i});
  EXPECT_FALSE(EncodeWorlds({w}, "r").ok());
}

// ---- Pruning ----

TEST(Prune, DropsUnreachableGroups) {
  ConstraintSet cs;
  cs.AddCardinality({0, 1, 2}, 1, 2);  // group A
  cs.AddCardinality({3, 4, 5}, 1, 2);  // group B (unreachable)
  cs.AddAnd(6, 0, 1);                  // derived from group A
  PruneResult pr = Prune(cs, {6}, 7);
  EXPECT_EQ(pr.stats.vars_after, 4u);  // 6, 0, 1, 2 (via cardinality rows)
  EXPECT_EQ(pr.stats.constraints_after, 5u);
  EXPECT_FALSE(pr.live.contains(3));
}

TEST(Prune, ReachesAcrossInterleavedConstraints) {
  // Permutation-style coupling: row constraints first, column constraints
  // after; the paper's single reverse pass would under-approximate here.
  ConstraintSet cs;
  // rows: {0,1}, {2,3}; cols: {0,2}, {1,3}
  cs.AddCardinality({0, 1}, 1, 1);
  cs.AddCardinality({2, 3}, 1, 1);
  cs.AddCardinality({0, 2}, 1, 1);
  cs.AddCardinality({1, 3}, 1, 1);
  PruneResult pr = Prune(cs, {0}, 4);
  EXPECT_EQ(pr.stats.vars_after, 4u);
  EXPECT_EQ(pr.stats.constraints_after, cs.size());
}

TEST(Prune, BoundsIdenticalWithAndWithoutPruning) {
  LicmDatabase db = Figure2c();
  // Add an unrelated constrained block that pruning should drop.
  std::vector<BVar> junk;
  for (int i = 0; i < 5; ++i) junk.push_back(db.pool().New());
  db.constraints().AddCardinality(junk, 2, 3);

  auto q = rel::CountStar(rel::Scan("trans_item"));
  AnswerOptions with, without;
  with.bounds.prune = true;
  without.bounds.prune = false;
  auto a1 = AnswerAggregate(*q, db, with);
  auto a2 = AnswerAggregate(*q, db, without);
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a2.ok());
  EXPECT_DOUBLE_EQ(a1->bounds.min.value, a2->bounds.min.value);
  EXPECT_DOUBLE_EQ(a1->bounds.max.value, a2->bounds.max.value);
  EXPECT_LT(a1->bounds.prune_stats.vars_after,
            a2->bounds.prune_stats.vars_after);
}

// ---- Aggregate infrastructure ----

TEST(Aggregate, InfeasibleConstraintsReported) {
  LicmDatabase db;
  LicmRelation r(TransItemSchema());
  BVar b = db.pool().New();
  r.AppendUnchecked({int64_t{1}, std::string("a")}, Ext::Maybe(b));
  db.constraints().AddFix(b, 1);
  db.constraints().AddFix(b, 0);
  LICM_CHECK_OK(db.AddRelation("r", std::move(r)));
  auto ans = AnswerAggregate(*rel::CountStar(rel::Scan("r")), db);
  ASSERT_FALSE(ans.ok());
  EXPECT_EQ(ans.status().code(), StatusCode::kInfeasible);
}

TEST(Aggregate, EmptyRelationGivesZeroBounds) {
  LicmDatabase db;
  LICM_CHECK_OK(db.AddRelation("r", LicmRelation(TransItemSchema())));
  auto ans = AnswerAggregate(*rel::CountStar(rel::Scan("r")), db);
  ASSERT_TRUE(ans.ok());
  EXPECT_DOUBLE_EQ(ans->bounds.min.value, 0.0);
  EXPECT_DOUBLE_EQ(ans->bounds.max.value, 0.0);
}

TEST(Aggregate, SumBoundsWeightedByPrice) {
  // Two maybe items with prices 5 and 3, mutually exclusive: SUM(price) is
  // 3 or 5 in every world.
  LicmDatabase db;
  LicmRelation r(rel::Schema(
      {{"item", ValueType::kString}, {"price", ValueType::kInt}}));
  BVar b1 = db.pool().New(), b2 = db.pool().New();
  r.AppendUnchecked({std::string("a"), int64_t{5}}, Ext::Maybe(b1));
  r.AppendUnchecked({std::string("b"), int64_t{3}}, Ext::Maybe(b2));
  db.constraints().AddMutualExclusion(b1, b2);
  LICM_CHECK_OK(db.AddRelation("r", std::move(r)));
  auto ans = AnswerAggregate(*rel::Sum(rel::Scan("r"), "price"), db);
  ASSERT_TRUE(ans.ok());
  EXPECT_DOUBLE_EQ(ans->bounds.min.value, 3.0);
  EXPECT_DOUBLE_EQ(ans->bounds.max.value, 5.0);
}

TEST(Aggregate, ExtremeWorldIsValid) {
  LicmDatabase db = Figure2c();
  auto ans = AnswerAggregate(*rel::CountStar(rel::Scan("trans_item")), db);
  ASSERT_TRUE(ans.ok());
  ASSERT_TRUE(ans->bounds.max.has_world);
  // Expand the (partial) world map into a full assignment; all pool
  // variables are live here.
  std::vector<uint8_t> a(db.pool().size(), 0);
  for (const auto& [v, val] : ans->bounds.max.world) a[v] = val;
  EXPECT_TRUE(db.constraints().Satisfied(a));
  const LicmRelation& r = *db.GetRelation("trans_item").value();
  EXPECT_EQ(r.Instantiate(a).size(), 4u);
}

}  // namespace
}  // namespace licm
