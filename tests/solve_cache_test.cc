// Tests for the canonical component fingerprint (canonical.h), the LRU
// solve cache (solve_cache.h), and the batched min/max bounds engine:
// isomorphic programs fingerprint identically, mutants don't, and cached
// solves are bit-identical to uncached ones.
#include "solver/solve_cache.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "licm/aggregate.h"
#include "solver/canonical.h"
#include "solver/mip_solver.h"

namespace licm {
namespace {

using solver::CanonicalForm;
using solver::Canonicalize;
using solver::ComponentCache;
using solver::LinearProgram;
using solver::MipOptions;
using solver::MipResult;
using solver::MipSolver;
using solver::MipStats;
using solver::Row;
using solver::RowOp;
using solver::Sense;
using solver::SolveStatus;
using solver::Term;
using solver::VarId;

// A random small binary program: cardinality-style rows over random
// subsets, occasional non-unit coefficients, random 0/1 objective.
LinearProgram RandomProgram(Rng* rng, int max_vars = 8) {
  LinearProgram lp;
  const int n = 2 + static_cast<int>(rng->Uniform(max_vars - 1));
  for (int v = 0; v < n; ++v) lp.AddBinary();
  for (int v = 0; v < n; ++v) {
    if (rng->Bernoulli(0.7)) {
      lp.SetObjectiveCoef(v, rng->Bernoulli(0.3) ? 2.0 : 1.0);
    }
  }
  const int rows = 1 + static_cast<int>(rng->Uniform(4));
  for (int r = 0; r < rows; ++r) {
    Row row;
    for (int v = 0; v < n; ++v) {
      if (rng->Bernoulli(0.5)) {
        row.terms.push_back(
            {static_cast<VarId>(v), rng->Bernoulli(0.2) ? 2.0 : 1.0});
      }
    }
    if (row.terms.empty()) continue;
    const RowOp ops[] = {RowOp::kLe, RowOp::kGe, RowOp::kEq};
    row.op = ops[rng->Uniform(3)];
    row.rhs = static_cast<double>(rng->Uniform(row.terms.size() + 1));
    lp.AddRow(std::move(row));
  }
  return lp;
}

// Applies a variable permutation (old id -> new id) and shuffles row and
// term order: an isomorphic copy that shares no incidental ordering.
LinearProgram PermuteProgram(const LinearProgram& lp,
                             const std::vector<VarId>& perm, Rng* rng) {
  LinearProgram out;
  std::vector<VarId> inverse(perm.size());
  for (VarId v = 0; v < perm.size(); ++v) inverse[perm[v]] = v;
  for (VarId pos = 0; pos < perm.size(); ++pos) {
    const auto& def = lp.vars()[inverse[pos]];
    out.AddVariable(def.lower, def.upper, def.is_integer);
    out.SetObjectiveCoef(pos, lp.objective_coef(inverse[pos]));
  }
  out.AddObjectiveConstant(lp.objective_constant());
  std::vector<size_t> row_order(lp.num_rows());
  for (size_t r = 0; r < row_order.size(); ++r) row_order[r] = r;
  for (size_t r = row_order.size(); r > 1; --r) {
    std::swap(row_order[r - 1], row_order[rng->Uniform(r)]);
  }
  for (size_t r : row_order) {
    Row row = lp.rows()[r];
    for (Term& t : row.terms) t.var = perm[t.var];
    for (size_t i = row.terms.size(); i > 1; --i) {
      std::swap(row.terms[i - 1], row.terms[rng->Uniform(i)]);
    }
    out.AddRow(std::move(row));
  }
  return out;
}

std::vector<VarId> RandomPermutation(size_t n, Rng* rng) {
  std::vector<VarId> perm(n);
  for (VarId v = 0; v < n; ++v) perm[v] = v;
  for (size_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng->Uniform(i)]);
  }
  return perm;
}

// ---- Canonical form ----

TEST(Canonical, PermutedProgramsShareAKey) {
  Rng rng(7);
  for (int iter = 0; iter < 200; ++iter) {
    LinearProgram lp = RandomProgram(&rng);
    LinearProgram iso =
        PermuteProgram(lp, RandomPermutation(lp.num_vars(), &rng), &rng);
    CanonicalForm a = Canonicalize(lp);
    CanonicalForm b = Canonicalize(iso);
    ASSERT_EQ(a.key, b.key) << "iter " << iter;
    ASSERT_EQ(a.hash, b.hash);
  }
}

TEST(Canonical, RelabelingIsAValidWitness) {
  // Push the identity assignment of one program through canonical space
  // into the other: feasibility and objective must be preserved.
  Rng rng(11);
  for (int iter = 0; iter < 100; ++iter) {
    LinearProgram lp = RandomProgram(&rng);
    LinearProgram iso =
        PermuteProgram(lp, RandomPermutation(lp.num_vars(), &rng), &rng);
    CanonicalForm a = Canonicalize(lp);
    CanonicalForm b = Canonicalize(iso);
    ASSERT_EQ(a.key, b.key);
    std::vector<double> x(lp.num_vars());
    for (double& xi : x) xi = rng.Bernoulli(0.5) ? 1.0 : 0.0;
    std::vector<double> mapped =
        CanonicalToInput(b, InputToCanonical(a, x));
    EXPECT_EQ(lp.IsFeasible(x), iso.IsFeasible(mapped)) << "iter " << iter;
    EXPECT_DOUBLE_EQ(lp.EvalObjective(x), iso.EvalObjective(mapped));
  }
}

TEST(Canonical, MutantsGetDistinctKeys) {
  LinearProgram base;
  for (int v = 0; v < 4; ++v) base.AddBinary();
  base.SetObjectiveCoef(0, 1.0);
  base.SetObjectiveCoef(1, 1.0);
  base.AddRow(Row{{{0, 1}, {1, 1}, {2, 1}}, RowOp::kLe, 2});
  base.AddRow(Row{{{2, 1}, {3, 1}}, RowOp::kGe, 1});
  const std::string key = Canonicalize(base).key;

  {
    LinearProgram m = base;
    m.mutable_rows()[0].rhs = 1;  // tighter cardinality
    EXPECT_NE(Canonicalize(m).key, key);
  }
  {
    LinearProgram m = base;
    m.mutable_rows()[1].op = RowOp::kEq;
    EXPECT_NE(Canonicalize(m).key, key);
  }
  {
    LinearProgram m = base;
    m.mutable_rows()[0].terms[1].coef = 2.0;
    EXPECT_NE(Canonicalize(m).key, key);
  }
  {
    LinearProgram m = base;
    m.mutable_vars()[3].upper = 2.0;  // no longer binary
    EXPECT_NE(Canonicalize(m).key, key);
  }
  {
    LinearProgram m = base;
    m.SetObjectiveCoef(2, 1.0);  // objective sees one more variable
    EXPECT_NE(Canonicalize(m).key, key);
  }
  {
    LinearProgram m = base;
    m.AddObjectiveConstant(1.0);
    EXPECT_NE(Canonicalize(m).key, key);
  }
}

// ---- ComponentCache ----

CanonicalForm FormWithRhs(double rhs) {
  LinearProgram lp;
  lp.AddBinary();
  lp.AddRow(Row{{{0, 1}}, RowOp::kLe, rhs});
  return Canonicalize(lp);
}

TEST(ComponentCacheTest, LruEvictionAndCounters) {
  ComponentCache cache(2);
  CanonicalForm a = FormWithRhs(1), b = FormWithRhs(2), c = FormWithRhs(3);
  ComponentCache::Entry e;
  e.status = SolveStatus::kOptimal;
  e.objective = 1.0;

  EXPECT_FALSE(cache.Lookup(a, &e));
  EXPECT_TRUE(cache.Insert(a, e));
  EXPECT_TRUE(cache.Insert(b, e));
  EXPECT_FALSE(cache.Insert(b, e));  // already present
  EXPECT_TRUE(cache.Lookup(a, &e));  // a becomes most-recently-used
  EXPECT_TRUE(cache.Insert(c, e));   // evicts b, the LRU entry
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.Lookup(b, &e));
  EXPECT_TRUE(cache.Lookup(a, &e));
  EXPECT_TRUE(cache.Lookup(c, &e));

  solver::ComponentCacheStats s = cache.Snapshot();
  EXPECT_EQ(s.hits, 3);
  EXPECT_EQ(s.misses, 2);
  EXPECT_EQ(s.inserts, 3);
  EXPECT_EQ(s.evictions, 1);

  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ComponentCacheTest, EntriesRoundTrip) {
  ComponentCache cache;
  CanonicalForm f = FormWithRhs(1);
  ComponentCache::Entry in;
  in.status = SolveStatus::kOptimal;
  in.objective = 2.5;
  in.has_solution = true;
  in.solution = {1.0, 0.0, 1.0};
  ASSERT_TRUE(cache.Insert(f, in));
  ComponentCache::Entry out;
  ASSERT_TRUE(cache.Lookup(f, &out));
  EXPECT_EQ(out.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(out.objective, 2.5);
  EXPECT_EQ(out.solution, in.solution);
}

TEST(ComponentCacheTest, ConcurrentInsertLookupSmoke) {
  ComponentCache cache(64);
  std::vector<CanonicalForm> forms;
  for (int i = 0; i < 100; ++i) forms.push_back(FormWithRhs(i));
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([&cache, &forms, t] {
      ComponentCache::Entry e;
      e.status = SolveStatus::kOptimal;
      for (int round = 0; round < 50; ++round) {
        for (size_t i = t; i < forms.size(); i += 2) {
          if (!cache.Lookup(forms[i], &e)) {
            e.objective = static_cast<double>(i);
            cache.Insert(forms[i], e);
          } else {
            EXPECT_DOUBLE_EQ(e.objective, static_cast<double>(i));
          }
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_LE(cache.size(), 64u);
}

TEST(ComponentCacheTest, EpochCountsCrossVersionHits) {
  ComponentCache cache;
  CanonicalForm a = FormWithRhs(1), b = FormWithRhs(2);
  ComponentCache::Entry e;
  e.status = SolveStatus::kOptimal;
  ASSERT_TRUE(cache.Insert(a, e));

  // Same-epoch hits are ordinary hits.
  EXPECT_TRUE(cache.Lookup(a, &e));
  EXPECT_EQ(cache.Snapshot().cross_epoch_hits, 0);

  // After a version bump (mutation commit), a hit on the pre-bump entry is
  // the proof that the fingerprint-keyed result survived the mutation.
  cache.BumpEpoch();
  EXPECT_EQ(cache.epoch(), 1u);
  EXPECT_TRUE(cache.Lookup(a, &e));
  EXPECT_EQ(cache.Snapshot().cross_epoch_hits, 1);

  // Entries inserted in the current epoch do not count.
  ASSERT_TRUE(cache.Insert(b, e));
  EXPECT_TRUE(cache.Lookup(b, &e));
  EXPECT_EQ(cache.Snapshot().cross_epoch_hits, 1);

  // Two bumps later, both entries predate the epoch.
  cache.BumpEpoch();
  EXPECT_TRUE(cache.Lookup(a, &e));
  EXPECT_TRUE(cache.Lookup(b, &e));
  EXPECT_EQ(cache.Snapshot().cross_epoch_hits, 3);
}

TEST(ComponentCacheTest, EraseKeysRetiresExactFingerprints) {
  ComponentCache cache;
  CanonicalForm a = FormWithRhs(1), b = FormWithRhs(2), c = FormWithRhs(3);
  ComponentCache::Entry e;
  e.status = SolveStatus::kOptimal;
  ASSERT_TRUE(cache.Insert(a, e));
  ASSERT_TRUE(cache.Insert(b, e));
  ASSERT_TRUE(cache.Insert(c, e));

  EXPECT_EQ(cache.EraseKeys({a.key, "no-such-fingerprint"}), 1u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.Lookup(a, &e));
  EXPECT_TRUE(cache.Lookup(b, &e));
  EXPECT_TRUE(cache.Lookup(c, &e));
  EXPECT_EQ(cache.EraseKeys({}), 0u);
}

// ---- IncumbentPool ----

TEST(IncumbentPoolTest, TranslatesSolutionsAcrossIsomorphs) {
  LinearProgram lp;
  for (int v = 0; v < 3; ++v) lp.AddBinary();
  lp.SetObjectiveCoef(0, 1.0);
  lp.SetObjectiveCoef(1, 2.0);
  lp.SetObjectiveCoef(2, 1.0);
  lp.AddRow(Row{{{0, 1}, {1, 1}, {2, 1}}, RowOp::kLe, 2});

  Rng rng(17);
  LinearProgram iso =
      PermuteProgram(lp, RandomPermutation(lp.num_vars(), &rng), &rng);
  CanonicalForm a = Canonicalize(lp);
  CanonicalForm b = Canonicalize(iso);
  ASSERT_EQ(a.key, b.key);

  solver::IncumbentPool pool;
  std::vector<double> x = {1.0, 1.0, 0.0};
  ASSERT_TRUE(lp.IsFeasible(x));
  pool.Store(a, lp.EvalObjective(x), x);
  EXPECT_EQ(pool.size(), 1u);

  // Fetching through the isomorph's form lands a point that is feasible
  // for the isomorph and worth the same objective.
  std::vector<double> mapped;
  ASSERT_TRUE(pool.Fetch(b, &mapped));
  EXPECT_TRUE(iso.IsFeasible(mapped));
  EXPECT_DOUBLE_EQ(iso.EvalObjective(mapped), lp.EvalObjective(x));
  EXPECT_EQ(pool.hits(), 1);

  std::vector<double> none;
  EXPECT_FALSE(pool.Fetch(FormWithRhs(7), &none));
}

TEST(IncumbentPoolTest, KeepsTheBetterIncumbent) {
  LinearProgram lp;
  for (int v = 0; v < 2; ++v) lp.AddBinary();
  lp.SetObjectiveCoef(0, 1.0);
  lp.SetObjectiveCoef(1, 1.0);
  lp.AddRow(Row{{{0, 1}, {1, 1}}, RowOp::kLe, 2});
  CanonicalForm f = Canonicalize(lp);

  solver::IncumbentPool pool;
  pool.Store(f, 1.0, {1.0, 0.0});
  pool.Store(f, 2.0, {1.0, 1.0});  // better: replaces
  pool.Store(f, 0.0, {0.0, 0.0});  // worse: ignored
  std::vector<double> x;
  ASSERT_TRUE(pool.Fetch(f, &x));
  EXPECT_DOUBLE_EQ(lp.EvalObjective(x), 2.0);
  EXPECT_EQ(pool.size(), 1u);
}

// ---- MipStats ----

TEST(MipStatsTest, MergeFromSumsCountersAndSplitsWallFromCpu) {
  MipStats a, b;
  a.nodes = 1; a.lp_solves = 2; a.components = 3;
  a.presolve_fixed_vars = 4; a.presolve_removed_rows = 5;
  a.presolve_calls = 6; a.decompose_calls = 7;
  a.cache_hits = 8; a.cache_misses = 9; a.canonical_forms = 10;
  a.num_threads = 2;
  a.solve_seconds = 0.5;
  a.cpu_seconds = 0.25;
  b.nodes = 10; b.lp_solves = 20; b.components = 30;
  b.presolve_fixed_vars = 40; b.presolve_removed_rows = 50;
  b.presolve_calls = 60; b.decompose_calls = 70;
  b.cache_hits = 80; b.cache_misses = 90; b.canonical_forms = 100;
  b.num_threads = 4;
  b.solve_seconds = 1.5;
  b.cpu_seconds = 1.25;
  a.MergeFrom(b);
  EXPECT_EQ(a.nodes, 11);
  EXPECT_EQ(a.lp_solves, 22);
  EXPECT_EQ(a.components, 33u);
  EXPECT_EQ(a.presolve_fixed_vars, 44u);
  EXPECT_EQ(a.presolve_removed_rows, 55u);
  EXPECT_EQ(a.presolve_calls, 66);
  EXPECT_EQ(a.decompose_calls, 77);
  EXPECT_EQ(a.cache_hits, 88);
  EXPECT_EQ(a.cache_misses, 99);
  EXPECT_EQ(a.canonical_forms, 110);
  // Concurrent strands overlap in time: the wall clock keeps the
  // outermost (max) value while CPU time adds across strands.
  EXPECT_EQ(a.num_threads, 4);
  EXPECT_DOUBLE_EQ(a.solve_seconds, 1.5);
  EXPECT_DOUBLE_EQ(a.cpu_seconds, 1.5);
}

TEST(MipStatsTest, MergeFromIsOrderIndependent) {
  MipStats parts[3];
  parts[0].nodes = 5; parts[0].solve_seconds = 0.75;
  parts[0].cpu_seconds = 0.7; parts[0].num_threads = 1;
  parts[1].nodes = 7; parts[1].solve_seconds = 2.0;
  parts[1].cpu_seconds = 1.9; parts[1].num_threads = 8;
  parts[2].nodes = 11; parts[2].solve_seconds = 1.25;
  parts[2].cpu_seconds = 1.2; parts[2].num_threads = 4;
  MipStats forward, backward;
  for (int i = 0; i < 3; ++i) forward.MergeFrom(parts[i]);
  for (int i = 2; i >= 0; --i) backward.MergeFrom(parts[i]);
  EXPECT_EQ(forward.nodes, backward.nodes);
  EXPECT_EQ(forward.num_threads, backward.num_threads);
  EXPECT_DOUBLE_EQ(forward.solve_seconds, backward.solve_seconds);
  EXPECT_DOUBLE_EQ(forward.cpu_seconds, backward.cpu_seconds);
  EXPECT_EQ(forward.nodes, 23);
  EXPECT_EQ(forward.num_threads, 8);
  EXPECT_DOUBLE_EQ(forward.solve_seconds, 2.0);
  EXPECT_DOUBLE_EQ(forward.cpu_seconds, 3.8);
}

// ---- Batched SolveMinMax ----

void ExpectSameResult(const MipResult& got, const MipResult& want) {
  ASSERT_EQ(got.status, want.status);
  EXPECT_EQ(got.has_solution, want.has_solution);
  if (want.has_solution) {
    EXPECT_DOUBLE_EQ(got.objective, want.objective);
    EXPECT_DOUBLE_EQ(got.best_bound, want.best_bound);
  }
}

TEST(SolveMinMax, MatchesSeparateSolves) {
  Rng rng(23);
  for (int iter = 0; iter < 150; ++iter) {
    LinearProgram lp = RandomProgram(&rng, 10);
    for (bool use_cache : {false, true}) {
      MipOptions opt;
      opt.use_cache = use_cache;
      MipSolver solver(opt);
      solver::MinMaxMipResult both = solver.SolveMinMax(lp);
      MipResult max = solver.Solve(lp, Sense::kMaximize);
      MipResult min = solver.Solve(lp, Sense::kMinimize);
      ExpectSameResult(both.max, max);
      ExpectSameResult(both.min, min);
      if (both.max.has_solution) {
        EXPECT_TRUE(lp.IsFeasible(both.max.solution));
        EXPECT_DOUBLE_EQ(lp.EvalObjective(both.max.solution),
                         both.max.objective);
      }
      if (both.min.has_solution) {
        EXPECT_TRUE(lp.IsFeasible(both.min.solution));
        EXPECT_DOUBLE_EQ(lp.EvalObjective(both.min.solution),
                         both.min.objective);
      }
      EXPECT_EQ(both.stats.presolve_calls, 1);
      // Decomposition is skipped when presolve already proves infeasible.
      EXPECT_LE(both.stats.decompose_calls, 1);
      if (both.max.status != SolveStatus::kInfeasible) {
        EXPECT_EQ(both.stats.decompose_calls, 1);
      }
    }
  }
}

TEST(IncumbentPoolTest, WarmStartsUncacheableResolves) {
  // With the memo cache off, the pool is the only carrier across solves:
  // the second run must seed incumbents from the first and still produce
  // bit-identical results.
  Rng rng(53);
  LinearProgram lp = RandomProgram(&rng, 10);
  solver::IncumbentPool pool;
  MipOptions opt;
  opt.use_cache = false;
  opt.incumbent_pool = &pool;
  MipSolver solver(opt);

  const solver::MinMaxMipResult cold = solver.SolveMinMax(lp);
  if (!cold.min.has_solution) GTEST_SKIP() << "random program infeasible";
  ASSERT_GT(pool.size(), 0u);
  const solver::MinMaxMipResult warm = solver.SolveMinMax(lp);
  EXPECT_GT(warm.stats.warm_incumbents, 0);
  ExpectSameResult(warm.min, cold.min);
  ExpectSameResult(warm.max, cold.max);
}

// ---- Aggregate layer ----

// A constraint set of `groups` structurally identical blocks over disjoint
// variables: the shape the cache exists for.
ConstraintSet IsomorphicGroups(int groups, int group_size, int64_t z1,
                               int64_t z2) {
  ConstraintSet cs;
  for (int g = 0; g < groups; ++g) {
    std::vector<BVar> vars(group_size);
    for (int i = 0; i < group_size; ++i) {
      vars[i] = static_cast<BVar>(g * group_size + i);
    }
    cs.AddCardinality(vars, z1, z2);
  }
  return cs;
}

TEST(AggregateCache, IsomorphicGroupsHitTheCache) {
  const int kGroups = 40, kSize = 5;
  ConstraintSet cs = IsomorphicGroups(kGroups, kSize, 1, 3);
  Objective obj;
  for (BVar v = 0; v < kGroups * kSize; ++v) obj.coefs[v] = 1.0;

  BoundsOptions options;
  auto bounds = ComputeBounds(obj, cs, kGroups * kSize, options);
  ASSERT_TRUE(bounds.ok()) << bounds.status().ToString();
  EXPECT_DOUBLE_EQ(bounds->min.value, 1.0 * kGroups);
  EXPECT_DOUBLE_EQ(bounds->max.value, 3.0 * kGroups);
  // One presolve + one decomposition for BOTH senses, and all but one
  // component per sense answered by the cache.
  EXPECT_EQ(bounds->stats.presolve_calls, 1);
  EXPECT_EQ(bounds->stats.decompose_calls, 1);
  EXPECT_GE(bounds->stats.cache_hits, 2 * (kGroups - 1));
  EXPECT_LE(bounds->stats.cache_misses, 2);
}

TEST(AggregateCache, SharedCacheCarriesAcrossCalls) {
  ConstraintSet cs = IsomorphicGroups(10, 4, 1, 2);
  Objective obj;
  for (BVar v = 0; v < 40; ++v) obj.coefs[v] = 1.0;

  ComponentCache shared;
  BoundsOptions options;
  options.mip.cache = &shared;
  auto first = ComputeBounds(obj, cs, 40, options);
  ASSERT_TRUE(first.ok());
  auto second = ComputeBounds(obj, cs, 40, options);
  ASSERT_TRUE(second.ok());
  // The second call finds every component already memoized.
  EXPECT_EQ(second->stats.cache_misses, 0);
  EXPECT_DOUBLE_EQ(second->min.value, first->min.value);
  EXPECT_DOUBLE_EQ(second->max.value, first->max.value);
}

TEST(AggregateCache, MutationKeepsUntouchedComponentsCached) {
  // The streaming commit protocol at the cache level: solve K pairwise
  // non-isomorphic groups (distinct sizes, so every group has its own
  // fingerprint), bump the epoch (one mutation commit), perturb exactly
  // one group, and re-solve. The K-1 untouched groups must be answered by
  // cross-epoch hits, the touched group's new fingerprint must miss and
  // insert, and nothing may be evicted.
  const int kGroups = 10;
  auto group_vars = [](int g) {
    // Group g owns 2+g consecutive variables; distinct widths keep the
    // canonical forms distinct.
    std::vector<BVar> vars;
    BVar base = 0;
    for (int h = 0; h < g; ++h) base += static_cast<BVar>(2 + h);
    for (int i = 0; i < 2 + g; ++i) vars.push_back(base + i);
    return vars;
  };
  uint32_t num_vars = 0;
  for (int g = 0; g < kGroups; ++g) num_vars += 2 + g;

  auto build = [&](int64_t group0_z1, int64_t group0_z2) {
    ConstraintSet cs;
    for (int g = 0; g < kGroups; ++g) {
      std::vector<BVar> vars = group_vars(g);
      const int64_t z1 = g == 0 ? group0_z1 : 1;
      const int64_t z2 =
          g == 0 ? group0_z2 : static_cast<int64_t>(vars.size()) - 1;
      cs.AddCardinality(vars, z1, z2);
    }
    return cs;
  };
  Objective obj;
  for (BVar v = 0; v < num_vars; ++v) obj.coefs[v] = 1.0;

  ComponentCache shared;
  BoundsOptions options;
  options.mip.cache = &shared;
  auto before = ComputeBounds(obj, build(1, 1), num_vars, options);
  ASSERT_TRUE(before.ok());
  const solver::ComponentCacheStats cold = shared.Snapshot();

  shared.BumpEpoch();
  // "Mutate" group 0: shift its cardinality band from [1,1] to [0,1].
  // All other groups keep their constraints — and their fingerprints.
  auto after = ComputeBounds(obj, build(0, 1), num_vars, options);
  ASSERT_TRUE(after.ok());
  const solver::ComponentCacheStats warm = shared.Snapshot();

  // Untouched components were served across the version bump.
  EXPECT_GE(warm.cross_epoch_hits, 2 * (kGroups - 1));
  // Only the touched component's new fingerprint missed (once per sense).
  EXPECT_LE(warm.misses - cold.misses, 2);
  EXPECT_GE(warm.inserts - cold.inserts, 1);
  // Mutation never evicts: stale fingerprints just stop being looked up.
  EXPECT_EQ(warm.evictions, 0);
  // And the bounds reflect the edit: group 0's band shifted from [1,1] to
  // [0,1], so the floor drops by one and the ceiling is unchanged.
  EXPECT_DOUBLE_EQ(after->min.value, before->min.value - 1.0);
  EXPECT_DOUBLE_EQ(after->max.value, before->max.value);
}

// Random oracle-sized instances: the cache must be answer-invisible.
ConstraintSet RandomConstraints(Rng* rng, uint32_t num_vars) {
  ConstraintSet cs;
  const int n = static_cast<int>(rng->Uniform(5));
  for (int c = 0; c < n; ++c) {
    std::vector<BVar> subset;
    for (BVar v = 0; v < num_vars; ++v) {
      if (rng->Bernoulli(0.4)) subset.push_back(v);
    }
    if (subset.size() < 2) continue;
    switch (rng->Uniform(4)) {
      case 0: {
        int64_t z1 = rng->UniformInt(0, 1);
        cs.AddCardinality(subset, z1,
                          rng->UniformInt(z1, subset.size()));
        break;
      }
      case 1: cs.AddImplication(subset[0], subset[1]); break;
      case 2: cs.AddMutualExclusion(subset[0], subset[1]); break;
      case 3: cs.AddOr(subset[0], {subset[1]}); break;
    }
  }
  return cs;
}

TEST(AggregateCache, CachedBoundsEqualUncachedExactly) {
  Rng rng(31);
  for (int iter = 0; iter < 120; ++iter) {
    const uint32_t num_vars = 4 + static_cast<uint32_t>(rng.Uniform(8));
    ConstraintSet cs = RandomConstraints(&rng, num_vars);
    Objective obj;
    obj.constant = static_cast<double>(rng.Uniform(3));
    for (BVar v = 0; v < num_vars; ++v) {
      if (rng.Bernoulli(0.7)) obj.coefs[v] = 1.0;
    }

    BoundsOptions cached, uncached;
    uncached.mip.use_cache = false;
    auto with = ComputeBounds(obj, cs, num_vars, cached);
    auto without = ComputeBounds(obj, cs, num_vars, uncached);
    ASSERT_EQ(with.ok(), without.ok()) << "iter " << iter;
    if (!with.ok()) continue;
    EXPECT_EQ(with->min.value, without->min.value) << "iter " << iter;
    EXPECT_EQ(with->max.value, without->max.value) << "iter " << iter;
    EXPECT_EQ(with->min.exact, without->min.exact);
    EXPECT_EQ(with->max.exact, without->max.exact);
    EXPECT_EQ(with->min.proved, without->min.proved);
    EXPECT_EQ(with->max.proved, without->max.proved);
  }
}

TEST(AggregateCache, MinMaxProbesMatchUncached) {
  Rng rng(41);
  for (int iter = 0; iter < 60; ++iter) {
    const uint32_t num_vars = 3 + static_cast<uint32_t>(rng.Uniform(5));
    ConstraintSet cs = RandomConstraints(&rng, num_vars);
    LicmRelation r(rel::Schema({{"val", rel::ValueType::kInt}}));
    for (BVar v = 0; v < num_vars; ++v) {
      rel::Tuple t{static_cast<int64_t>(rng.Uniform(4))};
      if (rng.Bernoulli(0.2)) {
        r.AppendUnchecked(std::move(t), Ext::Certain());
      } else {
        r.AppendUnchecked(std::move(t), Ext::Maybe(v));
      }
    }
    for (bool is_max : {false, true}) {
      BoundsOptions cached, uncached;
      uncached.mip.use_cache = false;
      auto with = ComputeMinMaxBounds(r, "val", cs, num_vars, is_max, cached);
      auto without =
          ComputeMinMaxBounds(r, "val", cs, num_vars, is_max, uncached);
      ASSERT_EQ(with.ok(), without.ok()) << "iter " << iter;
      if (!with.ok()) continue;
      EXPECT_EQ(with->lo, without->lo) << "iter " << iter;
      EXPECT_EQ(with->hi, without->hi) << "iter " << iter;
      EXPECT_EQ(with->exact_lo, without->exact_lo);
      EXPECT_EQ(with->exact_hi, without->exact_hi);
      EXPECT_EQ(with->may_be_empty, without->may_be_empty);
      EXPECT_EQ(with->always_empty, without->always_empty);
    }
  }
}

}  // namespace
}  // namespace licm
