// Tests of the event-driven data plane (src/net/): epoll loopback
// sessions in both codecs (including pipelining and byte-at-a-time
// delivery), the request coalescer's exactly-one-solve guarantee, and
// consistent-hash ring properties. Socket tests skip when the sandbox
// forbids binding, mirroring service_test.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "licm/evaluator.h"
#include "net/coalescer.h"
#include "net/front_end.h"
#include "net/shard_router.h"
#include "net/wire.h"
#include "service/json.h"
#include "service/server.h"
#include "testing/generator.h"

namespace licm::net {
namespace {

using service::JsonValue;
using service::ParseJson;
using service::QueryService;
using service::RequestRouter;
using service::WireRequest;

// A small solvable fuzz case with its offline-exact bounds (the same
// fixture shape service_test uses).
struct Fixture {
  testing::FuzzCase fuzz;
  double exact_min = 0, exact_max = 0;

  static Fixture Make(uint64_t seed_from = 1) {
    for (uint64_t seed = seed_from; seed < seed_from + 64; ++seed) {
      Fixture f;
      f.fuzz = testing::GenerateCase(seed);
      auto ans = AnswerAggregate(*f.fuzz.query, f.fuzz.db, {});
      if (!ans.ok()) continue;
      f.exact_min = ans->bounds.min.value;
      f.exact_max = ans->bounds.max.value;
      return f;
    }
    ADD_FAILURE() << "no feasible fuzz case in 64 seeds";
    return {};
  }
};

RequestRouter::QueryFactory FixtureFactory(const Fixture& f) {
  return [query = f.fuzz.query](const WireRequest&)
             -> Result<rel::QueryNodePtr> { return query; };
}

// Blocking test client speaking either codec over one socket.
class TestClient {
 public:
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }

  bool SendAll(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t w = ::send(fd_, bytes.data() + sent,
                               bytes.size() - sent, MSG_NOSIGNAL);
      if (w < 0 && errno == EINTR) continue;
      if (w <= 0) return false;
      sent += static_cast<size_t>(w);
    }
    return true;
  }

  /// Dribbles bytes one send() call each — the short-read regression
  /// drive: every framing layer must survive arbitrary packetization.
  bool SendByteAtATime(const std::string& bytes) {
    for (char c : bytes) {
      if (!SendAll(std::string(1, c))) return false;
    }
    return true;
  }

  Result<std::string> RecvLine() {
    while (true) {
      const size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      if (!Fill()) return Status::IOError("connection closed");
    }
  }

  Result<std::string> RecvFramePayload() {
    while (true) {
      size_t consumed = 0;
      Frame frame;
      LICM_ASSIGN_OR_RETURN(bool complete,
                            TryDecodeFrame(buffer_, &consumed, &frame));
      if (complete) {
        buffer_.erase(0, consumed);
        return std::move(frame.payload);
      }
      if (!Fill()) return Status::IOError("connection closed");
    }
  }

  Result<JsonValue> RoundTripLine(const std::string& line) {
    if (!SendAll(line + "\n")) return Status::IOError("send failed");
    LICM_ASSIGN_OR_RETURN(std::string reply, RecvLine());
    return ParseJson(reply);
  }

  Result<JsonValue> RoundTripBinary(const WireRequest& req) {
    if (!SendAll(EncodeRequestFrame(req))) {
      return Status::IOError("send failed");
    }
    LICM_ASSIGN_OR_RETURN(std::string payload, RecvFramePayload());
    return ParseJson(payload);
  }

 private:
  bool Fill() {
    char chunk[4096];
    while (true) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
      return true;
    }
  }

  int fd_ = -1;
  std::string buffer_;
};

// Starts a front end over the fixture and hands it to `body`. Skips when
// the sandbox forbids loopback sockets.
void WithFrontEnd(int num_loops,
                  const std::function<void(const Fixture&, int port)>& body) {
  QueryService svc({.num_workers = 2, .solver_threads = 1});
  Fixture f = Fixture::Make();
  ASSERT_TRUE(svc.AddInstance("case", f.fuzz.db).ok());
  RequestRouter router(&svc, FixtureFactory(f));
  NetFrontEnd fe(&router, {.num_loops = num_loops});
  Status listening = fe.Listen("127.0.0.1", 0);
  if (!listening.ok()) {
    GTEST_SKIP() << "cannot bind a loopback socket here: "
                 << listening.ToString();
  }
  ASSERT_GT(fe.port(), 0);
  std::thread serve([&] { EXPECT_TRUE(fe.Serve().ok()); });
  body(f, fe.port());
  fe.Stop();
  serve.join();
}

TEST(NetFrontEnd, LineJsonSessionMatchesOfflineBounds) {
  WithFrontEnd(1, [](const Fixture& f, int port) {
    TestClient c;
    ASSERT_TRUE(c.Connect(port));
    auto pong = c.RoundTripLine("{\"op\":\"ping\",\"id\":1}");
    ASSERT_TRUE(pong.ok()) << pong.status().ToString();
    EXPECT_TRUE(pong->GetBool("ok", false).value());

    auto q = c.RoundTripLine(
        "{\"op\":\"query\",\"id\":2,\"instance\":\"case\"}");
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    EXPECT_TRUE(q->GetBool("ok", false).value());
    EXPECT_EQ(f.exact_min, q->GetNumber("min", -1e9).value());
    EXPECT_EQ(f.exact_max, q->GetNumber("max", -1e9).value());

    // Malformed line: typed error, connection survives.
    auto bad = c.RoundTripLine("not json");
    ASSERT_TRUE(bad.ok());
    EXPECT_FALSE(bad->GetBool("ok", true).value());
    auto again = c.RoundTripLine("{\"op\":\"ping\",\"id\":3}");
    ASSERT_TRUE(again.ok());
    EXPECT_TRUE(again->GetBool("ok", false).value());
  });
}

TEST(NetFrontEnd, BinarySessionMatchesOfflineBounds) {
  WithFrontEnd(2, [](const Fixture& f, int port) {
    TestClient c;
    ASSERT_TRUE(c.Connect(port));
    WireRequest ping;
    ping.op = "ping";
    ping.id = 1;
    auto pong = c.RoundTripBinary(ping);
    ASSERT_TRUE(pong.ok()) << pong.status().ToString();
    EXPECT_TRUE(pong->GetBool("ok", false).value());
    EXPECT_EQ(1, pong->GetInt("id", 0).value());

    WireRequest query;
    query.op = "query";
    query.id = 2;
    query.instance = "case";
    auto q = c.RoundTripBinary(query);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    EXPECT_TRUE(q->GetBool("ok", false).value());
    EXPECT_EQ(f.exact_min, q->GetNumber("min", -1e9).value());
    EXPECT_EQ(f.exact_max, q->GetNumber("max", -1e9).value());
  });
}

TEST(NetFrontEnd, ByteAtATimeDeliveryInBothCodecs) {
  WithFrontEnd(1, [](const Fixture& f, int port) {
    {
      TestClient c;
      ASSERT_TRUE(c.Connect(port));
      ASSERT_TRUE(c.SendByteAtATime(
          "{\"op\":\"query\",\"id\":7,\"instance\":\"case\"}\n"));
      auto line = c.RecvLine();
      ASSERT_TRUE(line.ok()) << line.status().ToString();
      auto q = ParseJson(*line);
      ASSERT_TRUE(q.ok());
      EXPECT_EQ(f.exact_min, q->GetNumber("min", -1e9).value());
      EXPECT_EQ(7, q->GetInt("id", 0).value());
    }
    {
      TestClient c;
      ASSERT_TRUE(c.Connect(port));
      WireRequest query;
      query.op = "query";
      query.id = 8;
      query.instance = "case";
      ASSERT_TRUE(c.SendByteAtATime(EncodeRequestFrame(query)));
      auto payload = c.RecvFramePayload();
      ASSERT_TRUE(payload.ok()) << payload.status().ToString();
      auto q = ParseJson(*payload);
      ASSERT_TRUE(q.ok());
      EXPECT_EQ(f.exact_max, q->GetNumber("max", 1e9).value());
      EXPECT_EQ(8, q->GetInt("id", 0).value());
    }
  });
}

TEST(NetFrontEnd, PipelinedBinaryRequestsAllAnswerById) {
  WithFrontEnd(2, [](const Fixture& f, int port) {
    TestClient c;
    ASSERT_TRUE(c.Connect(port));
    // Six requests in one write; responses may arrive in any order.
    std::string batch;
    for (int id = 10; id < 16; ++id) {
      WireRequest query;
      query.op = "query";
      query.id = id;
      query.instance = "case";
      batch += EncodeRequestFrame(query);
    }
    ASSERT_TRUE(c.SendAll(batch));
    std::set<int64_t> ids;
    for (int i = 0; i < 6; ++i) {
      auto payload = c.RecvFramePayload();
      ASSERT_TRUE(payload.ok()) << payload.status().ToString();
      auto q = ParseJson(*payload);
      ASSERT_TRUE(q.ok());
      EXPECT_TRUE(q->GetBool("ok", false).value());
      EXPECT_EQ(f.exact_min, q->GetNumber("min", -1e9).value());
      ids.insert(q->GetInt("id", 0).value());
    }
    EXPECT_EQ(6u, ids.size());
    EXPECT_EQ(10, *ids.begin());
    EXPECT_EQ(15, *ids.rbegin());
  });
}

TEST(NetFrontEnd, CorruptBinaryFrameDropsOnlyThatConnection) {
  WithFrontEnd(1, [](const Fixture&, int port) {
    TestClient bad, good;
    ASSERT_TRUE(bad.Connect(port));
    ASSERT_TRUE(good.Connect(port));

    WireRequest ping;
    ping.op = "ping";
    ping.id = 1;
    std::string frame = EncodeRequestFrame(ping);
    frame.back() = static_cast<char>(frame.back() ^ 0x01);  // break the CRC
    ASSERT_TRUE(bad.SendAll(frame));
    auto reply = bad.RecvFramePayload();
    EXPECT_FALSE(reply.ok());  // connection dropped, no resync attempted

    auto pong = good.RoundTripLine("{\"op\":\"ping\",\"id\":2}");
    ASSERT_TRUE(pong.ok()) << pong.status().ToString();
    EXPECT_TRUE(pong->GetBool("ok", false).value());
  });
}

TEST(NetFrontEnd, ShutdownOpStopsServeAfterAcking) {
  QueryService svc({.num_workers = 1, .solver_threads = 1});
  Fixture f = Fixture::Make();
  ASSERT_TRUE(svc.AddInstance("case", f.fuzz.db).ok());
  RequestRouter router(&svc, FixtureFactory(f));
  NetFrontEnd fe(&router, {.num_loops = 2});
  Status listening = fe.Listen("127.0.0.1", 0);
  if (!listening.ok()) {
    GTEST_SKIP() << "cannot bind a loopback socket here: "
                 << listening.ToString();
  }
  std::thread serve([&] { EXPECT_TRUE(fe.Serve().ok()); });
  {
    TestClient c;
    ASSERT_TRUE(c.Connect(fe.port()));
    WireRequest bye;
    bye.op = "shutdown";
    bye.id = 9;
    auto ack = c.RoundTripBinary(bye);
    ASSERT_TRUE(ack.ok()) << ack.status().ToString();
    EXPECT_TRUE(ack->GetBool("shutting_down", false).value());
  }
  serve.join();  // returns without an explicit Stop()
}

// ------------------------------------------------------------- coalescer --

TEST(Coalescer, NIdenticalConcurrentRequestsTriggerExactlyOneSolve) {
  QueryService svc({.num_workers = 2, .solver_threads = 1});
  Fixture f = Fixture::Make();
  ASSERT_TRUE(svc.AddInstance("case", f.fuzz.db).ok());

  // The solve hook parks the worker until every request is submitted, so
  // all N are concurrent by construction.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> solves{0};
  svc.SetSolveHookForTest([&] {
    solves.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });

  RequestCoalescer coalescer(&svc);
  constexpr int kN = 16;
  std::atomic<int> done_count{0};
  std::vector<Result<service::QueryResponse>> results(
      kN, Status::Internal("not delivered"));
  std::mutex results_mu;
  for (int i = 0; i < kN; ++i) {
    service::QueryRequest req;
    req.instance = "case";
    req.query = f.fuzz.query;
    req.deadline_s = 1e9;
    coalescer.Execute(std::move(req), [&, i](
                          const Result<service::QueryResponse>& r) {
      std::lock_guard<std::mutex> lock(results_mu);
      results[static_cast<size_t>(i)] = r;
      done_count.fetch_add(1);
    });
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  for (int spins = 0; done_count.load() < kN && spins < 10000; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(kN, done_count.load());
  EXPECT_EQ(1, solves.load());
  EXPECT_EQ(kN - 1, coalescer.hits());
  EXPECT_EQ(1, coalescer.misses());
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(f.exact_min, r->min);
    EXPECT_EQ(f.exact_max, r->max);
  }
}

TEST(Coalescer, DifferentDeadlinesDoNotCoalesce) {
  QueryService svc({.num_workers = 2, .solver_threads = 1});
  Fixture f = Fixture::Make();
  ASSERT_TRUE(svc.AddInstance("case", f.fuzz.db).ok());
  std::atomic<int> solves{0};
  svc.SetSolveHookForTest([&] { solves.fetch_add(1); });

  RequestCoalescer coalescer(&svc);
  std::atomic<int> done_count{0};
  for (double deadline : {1e9, 2e9}) {
    service::QueryRequest req;
    req.instance = "case";
    req.query = f.fuzz.query;
    req.deadline_s = deadline;
    coalescer.Execute(std::move(req),
                      [&](const Result<service::QueryResponse>& r) {
                        EXPECT_TRUE(r.ok());
                        done_count.fetch_add(1);
                      });
  }
  for (int spins = 0; done_count.load() < 2 && spins < 10000; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(2, done_count.load());
  EXPECT_EQ(2, solves.load());
  EXPECT_EQ(0, coalescer.hits());
  EXPECT_EQ(2, coalescer.misses());
}

TEST(Coalescer, SequentialRequestsAreMissesNotHits) {
  QueryService svc({.num_workers = 1, .solver_threads = 1});
  Fixture f = Fixture::Make();
  ASSERT_TRUE(svc.AddInstance("case", f.fuzz.db).ok());
  RequestCoalescer coalescer(&svc);
  for (int i = 0; i < 3; ++i) {
    std::mutex mu;
    std::condition_variable cv;
    bool delivered = false;
    service::QueryRequest req;
    req.instance = "case";
    req.query = f.fuzz.query;
    req.deadline_s = 1e9;
    coalescer.Execute(std::move(req),
                      [&](const Result<service::QueryResponse>& r) {
                        EXPECT_TRUE(r.ok());
                        std::lock_guard<std::mutex> lock(mu);
                        delivered = true;
                        cv.notify_one();
                      });
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return delivered; });
  }
  EXPECT_EQ(0, coalescer.hits());
  EXPECT_EQ(3, coalescer.misses());
}

TEST(Coalescer, AdmissionFailureCompletesEveryWaiter) {
  QueryService svc({.num_workers = 1, .solver_threads = 1});
  RequestCoalescer coalescer(&svc);
  std::atomic<int> done_count{0};
  service::QueryRequest req;
  req.instance = "no-such-instance";
  coalescer.Execute(std::move(req),
                    [&](const Result<service::QueryResponse>& r) {
                      EXPECT_FALSE(r.ok());
                      done_count.fetch_add(1);
                    });
  EXPECT_EQ(1, done_count.load());  // admission failures complete inline
}

// ------------------------------------------------------------- hash ring --

TEST(HashRing, SingleShardOwnsEverything) {
  HashRing ring(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(0, ring.ShardFor("key" + std::to_string(i)));
  }
}

TEST(HashRing, AssignmentIsDeterministicAndCoversAllShards) {
  HashRing a(4), b(4);
  std::set<int> seen;
  for (int i = 0; i < 400; ++i) {
    const std::string key = "instance-" + std::to_string(i);
    const int shard = a.ShardFor(key);
    EXPECT_EQ(shard, b.ShardFor(key));
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 4);
    seen.insert(shard);
  }
  EXPECT_EQ(4u, seen.size());
}

TEST(HashRing, GrowingTheRingMovesFewKeys) {
  // Consistent hashing's point: going 4 -> 5 shards relocates roughly
  // 1/5 of keys, not all of them (modulo hashing would move ~4/5).
  HashRing four(4), five(5);
  int moved = 0;
  const int kKeys = 2000;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "instance-" + std::to_string(i);
    if (four.ShardFor(key) != five.ShardFor(key)) ++moved;
  }
  EXPECT_LT(moved, kKeys / 2);
  EXPECT_GT(moved, 0);
}

TEST(HashRing, LoadIsRoughlyBalanced) {
  HashRing ring(4, 64);
  std::map<int, int> counts;
  const int kKeys = 4000;
  for (int i = 0; i < kKeys; ++i) {
    ++counts[ring.ShardFor("key-" + std::to_string(i))];
  }
  for (const auto& [shard, count] : counts) {
    EXPECT_GT(count, kKeys / 16) << "shard " << shard << " starved";
    EXPECT_LT(count, kKeys / 2) << "shard " << shard << " overloaded";
  }
}

}  // namespace
}  // namespace licm::net
