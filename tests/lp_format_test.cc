// Round-trip tests for the CPLEX LP format reader/writer: a program
// written by ToLpFormat must parse back to an equivalent model (same
// optimum under the solver), and hand-written files in the supported
// subset must parse correctly.
#include "solver/lp_format.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "solver/mip_solver.h"

namespace licm::solver {
namespace {

TEST(LpParse, HandWrittenModel) {
  const char* text = R"(\ a comment
Maximize
 obj: 3 x + 5 y - z
Subject To
 c0: x + 2 y <= 14
 c1: 3 x - y >= 0
 c2: x - y = 2
Bounds
 0 <= x <= 10
 -1 <= z
General
 x
Binary
 b
End
)";
  auto parsed = ParseLpFormat(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const LinearProgram& lp = parsed->program;
  EXPECT_EQ(parsed->sense, Sense::kMaximize);
  EXPECT_EQ(lp.num_vars(), 4u);  // x, y, z, b
  EXPECT_EQ(lp.num_rows(), 3u);
  EXPECT_EQ(lp.rows()[2].op, RowOp::kEq);
  // x bounds + integer, z lower bound, b binary.
  size_t xi = 0, zi = 0, bi = 0;
  for (size_t i = 0; i < parsed->names.size(); ++i) {
    if (parsed->names[i] == "x") xi = i;
    if (parsed->names[i] == "z") zi = i;
    if (parsed->names[i] == "b") bi = i;
  }
  EXPECT_TRUE(lp.vars()[xi].is_integer);
  EXPECT_DOUBLE_EQ(lp.vars()[xi].upper, 10.0);
  EXPECT_DOUBLE_EQ(lp.vars()[zi].lower, -1.0);
  EXPECT_TRUE(lp.vars()[bi].is_integer);
  EXPECT_DOUBLE_EQ(lp.vars()[bi].upper, 1.0);
}

TEST(LpParse, RejectsMalformedInput) {
  EXPECT_FALSE(ParseLpFormat("Subject To\n c: x <= 1\nEnd\n").ok());
  EXPECT_FALSE(ParseLpFormat("Maximize\n obj: x <= 3\nEnd\n").ok());
  EXPECT_FALSE(
      ParseLpFormat("Maximize\n obj: x\nSubject To\n c: x + y\nEnd\n").ok());
  EXPECT_FALSE(ParseLpFormat("garbage before sections\n").ok());
}

class LpRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(LpRoundTrip, WriteParseSolveAgrees) {
  const uint64_t seed = FuzzSeedFromEnv(0x11f000) + GetParam();
  SCOPED_TRACE("replay: LICM_FUZZ_SEED=" + std::to_string(seed - GetParam()));
  Rng rng(seed);
  LinearProgram lp;
  const int n = 3 + static_cast<int>(rng.Uniform(6));
  for (int v = 0; v < n; ++v) {
    VarId id = lp.AddBinary("b" + std::to_string(v));
    lp.SetObjectiveCoef(id, static_cast<double>(rng.UniformInt(-4, 4)));
  }
  const int m = 1 + static_cast<int>(rng.Uniform(5));
  for (int r = 0; r < m; ++r) {
    Row row;
    for (int v = 0; v < n; ++v) {
      const int64_t c = rng.UniformInt(-2, 2);
      if (c != 0) {
        row.terms.push_back(
            Term{static_cast<VarId>(v), static_cast<double>(c)});
      }
    }
    if (row.terms.empty()) continue;
    row.op = static_cast<RowOp>(rng.Uniform(3));
    row.rhs = static_cast<double>(rng.UniformInt(-2, 4));
    lp.AddRow(std::move(row));
  }
  const Sense sense = rng.Bernoulli(0.5) ? Sense::kMaximize : Sense::kMinimize;

  const std::string text1 = ToLpFormat(lp, sense);
  auto parsed = ParseLpFormat(text1);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->sense, sense);
  EXPECT_EQ(parsed->program.num_vars(), lp.num_vars());
  EXPECT_EQ(parsed->program.num_rows(), lp.num_rows());

  // One export->parse cycle is a fixpoint of the format: re-exporting the
  // parsed program reproduces the text byte for byte.
  const std::string text2 = ToLpFormat(parsed->program, parsed->sense);
  auto parsed2 = ParseLpFormat(text2);
  ASSERT_TRUE(parsed2.ok()) << parsed2.status().ToString();
  EXPECT_EQ(text2, ToLpFormat(parsed2->program, parsed2->sense));

  MipSolver solver;
  MipResult a = solver.Solve(lp, sense);
  MipResult b = solver.Solve(parsed->program, parsed->sense);
  ASSERT_EQ(a.status, b.status);
  if (a.status == SolveStatus::kOptimal) {
    EXPECT_DOUBLE_EQ(a.objective, b.objective);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpRoundTrip, ::testing::Range(0, 40));

TEST(LpFile, WriteAndReadBack) {
  LinearProgram lp;
  VarId a = lp.AddBinary("alpha");
  VarId b = lp.AddBinary("beta");
  lp.SetObjectiveCoef(a, 1);
  lp.SetObjectiveCoef(b, 2);
  lp.AddRow(Row{{{a, 1}, {b, 1}}, RowOp::kLe, 1});
  const std::string path = ::testing::TempDir() + "/roundtrip.lp";
  ASSERT_TRUE(WriteLpFile(lp, Sense::kMaximize, path).ok());
  auto parsed = ReadLpFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  MipResult r = MipSolver().Solve(parsed->program, parsed->sense);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(r.objective, 2.0);
  EXPECT_FALSE(ReadLpFile("/nonexistent/file.lp").ok());
}

}  // namespace
}  // namespace licm::solver
