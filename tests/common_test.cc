// Tests for the common substrate: Status/Result plumbing and the
// deterministic PRNG.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"

namespace licm {
namespace {

TEST(Status, CodesAndMessages) {
  EXPECT_TRUE(Status::OK().ok());
  Status s = Status::InvalidArgument("bad");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad");
  EXPECT_EQ(Status::Infeasible("x").code(), StatusCode::kInfeasible);
  EXPECT_EQ(Status::TimeLimit("x").code(), StatusCode::kTimeLimit);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  LICM_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(Result, PropagatesThroughMacros) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  auto bad = Quarter(6);  // 6/2 = 3 is odd
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(Rng, DeterministicAndSeedSensitive) {
  Rng a(1), b(1), c(2);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.Next(), b.Next());
  bool differs = false;
  Rng a2(1);
  for (int i = 0; i < 16; ++i) differs |= a2.Next() != c.Next();
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformIntCoversRangeWithoutEscaping) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, PermutationIsBijection) {
  Rng rng(5);
  auto p = rng.Permutation(20);
  std::set<uint32_t> s(p.begin(), p.end());
  EXPECT_EQ(s.size(), 20u);
  EXPECT_EQ(*s.begin(), 0u);
  EXPECT_EQ(*s.rbegin(), 19u);
}

TEST(Rng, BernoulliRespectsProbability) {
  Rng rng(7);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.25);
  EXPECT_NEAR(hits, 2500, 200);
}

TEST(StopWatch, MeasuresElapsedTime) {
  StopWatch w;
  EXPECT_GE(w.ElapsedMs(), 0.0);
  w.Restart();
  EXPECT_LT(w.ElapsedMs(), 1000.0);
}

TEST(Status, OverloadedIsTyped) {
  Status s = Status::Overloaded("queue full");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOverloaded);
  EXPECT_EQ(s.ToString(), "Overloaded: queue full");
}

// The service's admission control budgets requests off these semantics:
// a zero budget must read as expired-with-zero-remaining immediately, not
// as a negative or wrapped remaining time.
TEST(Deadline, ZeroBudgetExpiresImmediately) {
  const Deadline d = Deadline::After(0.0);
  EXPECT_TRUE(d.Expired());
  EXPECT_EQ(d.RemainingSeconds(), 0.0);
}

TEST(Deadline, AlreadyExpiredStaysExpiredAndClamped) {
  const Deadline d = Deadline::After(-5.0);  // budget in the past
  EXPECT_TRUE(d.Expired());
  // Sticky: a second read agrees, and remaining time clamps at zero
  // rather than going negative.
  EXPECT_TRUE(d.Expired());
  EXPECT_EQ(d.RemainingSeconds(), 0.0);
}

TEST(Deadline, RemainingTimeClampsWithinBudget) {
  const Deadline d = Deadline::After(3600.0);
  EXPECT_FALSE(d.Expired());
  const double remaining = d.RemainingSeconds();
  EXPECT_GT(remaining, 0.0);
  EXPECT_LE(remaining, 3600.0);
}

TEST(Deadline, NeverHasInfiniteRemaining) {
  const Deadline d = Deadline::Never();
  EXPECT_FALSE(d.Expired());
  EXPECT_TRUE(std::isinf(d.RemainingSeconds()));
  // A billion-second budget is the benches' "effectively unlimited".
  EXPECT_TRUE(std::isinf(Deadline::After(1e9).RemainingSeconds()));
}

TEST(Deadline, CancelZeroesRemainingTime) {
  Deadline d = Deadline::After(3600.0);
  d.Cancel();
  EXPECT_TRUE(d.Expired());
  EXPECT_EQ(d.RemainingSeconds(), 0.0);
}

TEST(Deadline, CopyPreservesExpiry) {
  Deadline d = Deadline::After(3600.0);
  d.Cancel();
  const Deadline copy = d;
  EXPECT_TRUE(copy.Expired());
  EXPECT_EQ(copy.RemainingSeconds(), 0.0);
}

}  // namespace
}  // namespace licm
