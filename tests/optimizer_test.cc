// Tests for the selection-pushdown optimizer: structural rewrites, schema
// inference, and — the property that matters — answer equivalence for both
// the deterministic engine and the LICM evaluator on random queries.
#include "relational/optimizer.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "licm/evaluator.h"
#include "relational/engine.h"

namespace licm::rel {
namespace {

Schema TransSchema() {
  return Schema({{"tid", ValueType::kInt},
                 {"item", ValueType::kString},
                 {"price", ValueType::kInt}});
}

Catalog MakeCatalog() { return {{"t", TransSchema()}}; }

Relation SampleRelation(Rng* rng, int rows) {
  const char* items[] = {"a", "b", "c", "d"};
  Relation r(TransSchema());
  for (int i = 0; i < rows; ++i) {
    r.AppendUnchecked({rng->UniformInt(1, 4),
                       std::string(items[rng->Uniform(4)]),
                       rng->UniformInt(0, 9)});
  }
  r.Deduplicate();
  return r;
}

// ---- Schema inference ----

TEST(InferSchema, CoversAllOperators) {
  Catalog cat = MakeCatalog();
  EXPECT_EQ(InferSchema(*Scan("t"), cat)->size(), 3u);
  EXPECT_EQ(InferSchema(*Project(Scan("t"), {"tid"}), cat)->size(), 1u);
  EXPECT_EQ(InferSchema(*Product(Scan("t"), Scan("t")), cat)->size(), 6u);
  auto join = Join(Scan("t"), Scan("t"), {{"item", "item"}});
  EXPECT_EQ(InferSchema(*join, cat)->size(), 5u);
  auto cp = CountPredicate(Scan("t"), "tid", CmpOp::kGe, 1);
  EXPECT_EQ(InferSchema(*cp, cat)->size(), 1u);
  EXPECT_EQ(InferSchema(*cp, cat)->column(0).name, "tid");
  EXPECT_FALSE(InferSchema(*Scan("missing"), cat).ok());
  EXPECT_FALSE(InferSchema(*CountStar(Scan("t")), cat).ok());
}

// ---- Structural rewrites ----

TEST(PushDown, SelectSinksBelowProject) {
  Catalog cat = MakeCatalog();
  auto q = Select(Project(Scan("t"), {"tid"}),
                  {{"tid", CmpOp::kEq, Value(int64_t{1})}});
  auto opt = PushDownSelections(q, cat);
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ((*opt)->kind, QueryKind::kProject);
  EXPECT_EQ((*opt)->left->kind, QueryKind::kSelect);
  EXPECT_EQ((*opt)->left->left->kind, QueryKind::kScan);
}

TEST(PushDown, AdjacentSelectsMerge) {
  Catalog cat = MakeCatalog();
  auto q = Select(Select(Scan("t"), {{"tid", CmpOp::kEq, Value(int64_t{1})}}),
                  {{"price", CmpOp::kLt, Value(int64_t{5})}});
  auto opt = PushDownSelections(q, cat);
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ((*opt)->kind, QueryKind::kSelect);
  EXPECT_EQ((*opt)->predicates.size(), 2u);
  EXPECT_EQ((*opt)->left->kind, QueryKind::kScan);
}

TEST(PushDown, SelectDistributesOverIntersect) {
  Catalog cat = MakeCatalog();
  auto q = Select(Intersect(Scan("t"), Scan("t")),
                  {{"tid", CmpOp::kEq, Value(int64_t{1})}});
  auto opt = PushDownSelections(q, cat);
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ((*opt)->kind, QueryKind::kIntersect);
  EXPECT_EQ((*opt)->left->kind, QueryKind::kSelect);
  EXPECT_EQ((*opt)->right->kind, QueryKind::kSelect);
}

TEST(PushDown, JoinRoutesPredicatesBySide) {
  Catalog cat = MakeCatalog();
  cat["s"] = Schema({{"item", ValueType::kString}, {"w", ValueType::kInt}});
  auto q = Select(Join(Scan("t"), Scan("s"), {{"item", "item"}}),
                  {{"tid", CmpOp::kEq, Value(int64_t{1})},  // left only
                   {"w", CmpOp::kGe, Value(int64_t{3})}});  // right only
  auto opt = PushDownSelections(q, cat);
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ((*opt)->kind, QueryKind::kJoin);
  EXPECT_EQ((*opt)->left->kind, QueryKind::kSelect);
  EXPECT_EQ((*opt)->right->kind, QueryKind::kSelect);
}

TEST(PushDown, GroupColumnPredicateSinksThroughCountPredicate) {
  Catalog cat = MakeCatalog();
  auto q = Select(CountPredicate(Scan("t"), "tid", CmpOp::kGe, 2),
                  {{"tid", CmpOp::kLe, Value(int64_t{2})}});
  auto opt = PushDownSelections(q, cat);
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ((*opt)->kind, QueryKind::kCountPredicate);
  EXPECT_EQ((*opt)->left->kind, QueryKind::kSelect);
}

// ---- Equivalence sweep ----

class PushDownEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(PushDownEquivalence, DeterministicAnswersUnchanged) {
  Rng rng(0x9d0000 + GetParam());
  Catalog cat = MakeCatalog();
  Database db;
  LICM_CHECK_OK(db.Add("t", SampleRelation(&rng, 30)));

  // A deliberately pessimal query: selections stacked on top.
  const char* items[] = {"a", "b", "c", "d"};
  std::vector<Predicate> preds{
      {"tid", CmpOp::kLe, Value(rng.UniformInt(1, 4))},
      {"item", CmpOp::kGe, Value(std::string(items[rng.Uniform(4)]))}};
  QueryNodePtr body;
  switch (rng.Uniform(4)) {
    case 0: body = Project(Scan("t"), {"tid", "item"}); break;
    case 1: body = Intersect(Scan("t"), Scan("t")); break;
    case 2: body = Join(Scan("t"), Scan("t"), {{"item", "item"}}); break;
    default:
      body = Scan("t");
      break;
  }
  // Project/Join change schemas; keep only predicates whose column
  // survives, which the optimizer must also respect.
  auto schema = InferSchema(*body, cat);
  ASSERT_TRUE(schema.ok());
  std::erase_if(preds, [&](const Predicate& p) {
    return !schema->Has(p.column);
  });
  auto q = CountStar(Select(body, preds));

  auto opt = PushDownSelections(q, cat);
  ASSERT_TRUE(opt.ok()) << opt.status().ToString();
  auto v1 = EvaluateAggregate(*q, db);
  auto v2 = EvaluateAggregate(**opt, db);
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_DOUBLE_EQ(*v1, *v2) << q->ToString() << "\nvs\n"
                             << (*opt)->ToString();
}

TEST_P(PushDownEquivalence, LicmBoundsUnchanged) {
  Rng rng(0xaa0000 + GetParam());
  Catalog cat = MakeCatalog();
  // Small uncertain relation with a cardinality constraint.
  licm::LicmDatabase db;
  licm::LicmRelation r(TransSchema());
  const char* items[] = {"a", "b", "c", "d"};
  std::vector<licm::BVar> vars;
  for (int i = 0; i < 8; ++i) {
    rel::Tuple t{rng.UniformInt(1, 3), std::string(items[rng.Uniform(4)]),
                 rng.UniformInt(0, 9)};
    bool dup = false;
    for (const auto& e : r.tuples()) dup |= e == t;
    if (dup) continue;
    if (rng.Bernoulli(0.3)) {
      r.AppendUnchecked(std::move(t), licm::Ext::Certain());
    } else {
      licm::BVar b = db.pool().New();
      vars.push_back(b);
      r.AppendUnchecked(std::move(t), licm::Ext::Maybe(b));
    }
  }
  if (vars.size() >= 2) {
    db.constraints().AddCardinality(vars, 1,
                                    static_cast<int64_t>(vars.size()));
  }
  LICM_CHECK_OK(db.AddRelation("t", std::move(r)));

  auto q = CountStar(Select(
      CountPredicate(Select(Scan("t"),
                            {{"item", CmpOp::kGe,
                              Value(std::string(items[rng.Uniform(4)]))}}),
                     "tid", CmpOp::kGe, 1),
      {{"tid", CmpOp::kLe, Value(rng.UniformInt(1, 3))}}));
  auto opt = PushDownSelections(q, cat);
  ASSERT_TRUE(opt.ok());

  auto a1 = licm::AnswerAggregate(*q, db);
  auto a2 = licm::AnswerAggregate(**opt, db);
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a2.ok());
  EXPECT_DOUBLE_EQ(a1->bounds.min.value, a2->bounds.min.value);
  EXPECT_DOUBLE_EQ(a1->bounds.max.value, a2->bounds.max.value);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PushDownEquivalence, ::testing::Range(0, 40));

}  // namespace
}  // namespace licm::rel
