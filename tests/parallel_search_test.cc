// Tests for parallel branch & bound: sequential and multi-thread solves
// must prove identical results (the determinism contract in DESIGN.md),
// the subtree-split path must actually engage on hard single-component
// instances, and interrupted parallel solves must still report valid
// proved bounds.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "solver/mip_solver.h"
#include "solver/scheduler.h"
#include "solver/solve_cache.h"

namespace licm::solver {
namespace {

// A dense n-by-n assignment instance with random rewards: one connected
// component whose search tree is deep enough to donate subtrees. With the
// LP bound off, propagation and probing carry the search — the paper's
// hard permutation-encoding regime in miniature.
LinearProgram PermutationInstance(int n, uint64_t seed) {
  Rng rng(seed);
  LinearProgram lp;
  std::vector<std::vector<VarId>> b(n, std::vector<VarId>(n));
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      b[i][j] = lp.AddBinary();
      lp.SetObjectiveCoef(b[i][j], static_cast<double>(rng.Uniform(50)));
    }
  for (int i = 0; i < n; ++i) {
    Row r1, r2;
    for (int j = 0; j < n; ++j) {
      r1.terms.push_back(Term{b[i][j], 1});
      r2.terms.push_back(Term{b[j][i], 1});
    }
    r1.op = r2.op = RowOp::kEq;
    r1.rhs = r2.rhs = 1;
    lp.AddRow(std::move(r1));
    lp.AddRow(std::move(r2));
  }
  return lp;
}

LinearProgram RandomProgram(uint64_t seed) {
  Rng rng(seed);
  const int n = 4 + static_cast<int>(rng.Uniform(10));
  const int m = 2 + static_cast<int>(rng.Uniform(8));
  LinearProgram lp;
  for (int v = 0; v < n; ++v) {
    VarId id = lp.AddBinary();
    lp.SetObjectiveCoef(id, static_cast<double>(rng.UniformInt(-4, 4)));
  }
  for (int r = 0; r < m; ++r) {
    Row row;
    for (int v = 0; v < n; ++v) {
      int64_t coef = rng.UniformInt(-2, 2);
      if (coef != 0 && rng.Bernoulli(0.6)) {
        row.terms.push_back(
            Term{static_cast<VarId>(v), static_cast<double>(coef)});
      }
    }
    if (row.terms.empty()) continue;
    row.op = static_cast<RowOp>(rng.Uniform(3));
    row.rhs = static_cast<double>(rng.UniformInt(-2, 5));
    lp.AddRow(std::move(row));
  }
  return lp;
}

TEST(ParallelSearch, RandomProgramsAgreeAcrossThreadCounts) {
  for (uint64_t seed = 0; seed < 60; ++seed) {
    LinearProgram lp = RandomProgram(9000 + seed);
    MipOptions seq_opts;
    seq_opts.num_threads = 1;
    MipResult seq = MipSolver(seq_opts).Solve(lp, Sense::kMaximize);
    MipOptions par_opts;
    par_opts.num_threads = 4;
    par_opts.split_node_threshold = 1;  // donate at every opportunity
    MipResult par = MipSolver(par_opts).Solve(lp, Sense::kMaximize);
    ASSERT_EQ(par.status, seq.status) << "seed " << seed;
    if (seq.status == SolveStatus::kOptimal) {
      EXPECT_DOUBLE_EQ(par.objective, seq.objective) << "seed " << seed;
      EXPECT_DOUBLE_EQ(par.best_bound, seq.best_bound) << "seed " << seed;
      EXPECT_TRUE(lp.IsFeasible(par.solution)) << "seed " << seed;
    }
  }
}

TEST(ParallelSearch, HardPermutationExercisesSubtreeSplit) {
  LinearProgram lp = PermutationInstance(9, 7);
  MipOptions seq_opts;
  seq_opts.num_threads = 1;
  seq_opts.use_lp_bound = false;
  MipResult seq = MipSolver(seq_opts).Solve(lp, Sense::kMaximize);
  ASSERT_EQ(seq.status, SolveStatus::kOptimal);
  EXPECT_EQ(seq.stats.subtree_splits, 0);
  EXPECT_EQ(seq.stats.num_threads, 1);

  MipOptions par_opts = seq_opts;
  par_opts.num_threads = 4;
  par_opts.split_node_threshold = 16;
  MipResult par = MipSolver(par_opts).Solve(lp, Sense::kMaximize);
  ASSERT_EQ(par.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(par.objective, seq.objective);
  EXPECT_DOUBLE_EQ(par.best_bound, seq.best_bound);
  EXPECT_TRUE(lp.IsFeasible(par.solution));
  // The point of the test: the search must actually have donated
  // subtrees, not just happened to agree while running sequentially.
  EXPECT_GT(par.stats.subtree_splits, 0);
  EXPECT_GE(par.stats.subtree_tasks, par.stats.subtree_splits);
  EXPECT_EQ(par.stats.num_threads, 4);
}

TEST(ParallelSearch, SolveMinMaxAgreesAcrossThreadCounts) {
  LinearProgram lp = PermutationInstance(6, 11);
  MipOptions seq_opts;
  seq_opts.num_threads = 1;
  MinMaxMipResult seq = MipSolver(seq_opts).SolveMinMax(lp);
  MipOptions par_opts;
  par_opts.num_threads = 4;
  par_opts.split_node_threshold = 8;
  MinMaxMipResult par = MipSolver(par_opts).SolveMinMax(lp);
  ASSERT_EQ(seq.min.status, SolveStatus::kOptimal);
  ASSERT_EQ(seq.max.status, SolveStatus::kOptimal);
  ASSERT_EQ(par.min.status, SolveStatus::kOptimal);
  ASSERT_EQ(par.max.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(par.min.objective, seq.min.objective);
  EXPECT_DOUBLE_EQ(par.max.objective, seq.max.objective);
  EXPECT_DOUBLE_EQ(par.min.best_bound, seq.min.best_bound);
  EXPECT_DOUBLE_EQ(par.max.best_bound, seq.max.best_bound);
}

TEST(ParallelSearch, CancelledDeadlineYieldsTimeLimitWithValidInterval) {
  // A pre-cancelled shared deadline: all workers observe the same expiry,
  // so the solve degrades to kTimeLimit (or proves infeasibility from the
  // root) with a bound that still contains the true optimum.
  LinearProgram lp = PermutationInstance(7, 3);
  MipResult full = MipSolver().Solve(lp, Sense::kMaximize);
  ASSERT_EQ(full.status, SolveStatus::kOptimal);

  Deadline dead = Deadline::Never();
  dead.Cancel();
  MipOptions opts;
  opts.num_threads = 4;
  opts.deadline = &dead;
  MipResult r = MipSolver(opts).Solve(lp, Sense::kMaximize);
  ASSERT_EQ(r.status, SolveStatus::kTimeLimit);
  EXPECT_GE(r.best_bound + 1e-6, full.objective);
  if (r.has_solution) {
    EXPECT_LE(r.objective, full.objective + 1e-6);
    EXPECT_TRUE(lp.IsFeasible(r.solution));
  }
}

TEST(ParallelSearch, NodeCappedParallelRunStillProvesValidBound) {
  LinearProgram lp = PermutationInstance(8, 5);
  MipResult full = MipSolver().Solve(lp, Sense::kMaximize);
  ASSERT_EQ(full.status, SolveStatus::kOptimal);

  MipOptions opts;
  opts.num_threads = 4;
  opts.split_node_threshold = 4;
  opts.use_lp_bound = false;
  opts.max_nodes_per_component = 40;
  MipResult r = MipSolver(opts).Solve(lp, Sense::kMaximize);
  if (r.status == SolveStatus::kTimeLimit) {
    EXPECT_GE(r.best_bound + 1e-6, full.objective);
    if (r.has_solution) {
      EXPECT_LE(r.objective, full.objective + 1e-6);
      EXPECT_TRUE(lp.IsFeasible(r.solution));
    }
  } else {
    ASSERT_EQ(r.status, SolveStatus::kOptimal);
    EXPECT_DOUBLE_EQ(r.objective, full.objective);
  }
}

TEST(ParallelSearch, SharedSchedulerServesManySolves) {
  // One pool shared across solver calls (the FeasibilityProber pattern):
  // each call must leave the scheduler reusable and agree with a
  // sequential solve.
  Scheduler sched(4);
  ComponentCache cache;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    LinearProgram lp = RandomProgram(4000 + seed);
    MipOptions seq_opts;
    seq_opts.num_threads = 1;
    MipResult seq = MipSolver(seq_opts).Solve(lp, Sense::kMaximize);
    MipOptions par_opts;
    par_opts.scheduler = &sched;
    par_opts.cache = &cache;
    par_opts.split_node_threshold = 1;
    MipResult par = MipSolver(par_opts).Solve(lp, Sense::kMaximize);
    ASSERT_EQ(par.status, seq.status) << "seed " << seed;
    if (seq.status == SolveStatus::kOptimal) {
      EXPECT_DOUBLE_EQ(par.objective, seq.objective) << "seed " << seed;
      EXPECT_DOUBLE_EQ(par.best_bound, seq.best_bound) << "seed " << seed;
    }
  }
}

TEST(ParallelSearch, StatsRecordResolvedThreadCount) {
  LinearProgram lp = RandomProgram(123);
  MipOptions opts;
  opts.num_threads = 3;
  MipResult r = MipSolver(opts).Solve(lp, Sense::kMaximize);
  EXPECT_EQ(r.stats.num_threads, 3);
  opts.num_threads = 1;
  MipResult s = MipSolver(opts).Solve(lp, Sense::kMaximize);
  EXPECT_EQ(s.stats.num_threads, 1);
  EXPECT_EQ(s.stats.subtree_splits, 0);
}

}  // namespace
}  // namespace licm::solver
