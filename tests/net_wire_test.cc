// Tests of the binary wire codec (src/net/wire.h): CRC32 vectors, varint
// and zigzag edge cases, request-payload round trips (including a
// randomized property sweep against the JSON request parser), frame
// extraction from partial buffers, and rejection of truncated or
// corrupted frames.
#include "net/wire.h"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "service/protocol.h"

namespace licm::net {
namespace {

// ------------------------------------------------------------- primitives --

TEST(Crc32, MatchesKnownVectors) {
  // The canonical CRC-32/IEEE check value.
  EXPECT_EQ(0xCBF43926u, Crc32("123456789", 9));
  EXPECT_EQ(0x00000000u, Crc32("", 0));
  // Incremental == one-shot.
  const char* text = "possibilistic";
  const uint32_t whole = Crc32(text, std::strlen(text));
  uint32_t chained = Crc32(text, 4);
  chained = Crc32(text + 4, std::strlen(text) - 4, chained);
  EXPECT_EQ(whole, chained);
  // Any single-byte change moves the checksum.
  EXPECT_NE(Crc32("123456789", 9), Crc32("123456788", 9));
}

uint64_t RoundTripVarint(uint64_t value, size_t* encoded_size = nullptr) {
  std::string buf;
  AppendVarint(&buf, value);
  if (encoded_size != nullptr) *encoded_size = buf.size();
  // Decode through the only public consumer: a request payload would do,
  // but the frame header is simpler — build a frame whose payload length
  // is `value`... impractical for huge values, so decode by hand with the
  // LEB128 rules the codec documents.
  uint64_t out = 0;
  int shift = 0;
  for (char c : buf) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(c) & 0x7F) << shift;
    shift += 7;
  }
  return out;
}

TEST(Varint, RoundTripsEdgeValues) {
  const uint64_t cases[] = {0,
                            1,
                            127,
                            128,
                            129,
                            16383,
                            16384,
                            (1ull << 32) - 1,
                            1ull << 32,
                            (1ull << 63),
                            ~0ull};
  for (uint64_t v : cases) {
    size_t size = 0;
    EXPECT_EQ(v, RoundTripVarint(v, &size)) << v;
    EXPECT_LE(size, 10u);
  }
  size_t size = 0;
  RoundTripVarint(127, &size);
  EXPECT_EQ(1u, size);
  RoundTripVarint(128, &size);
  EXPECT_EQ(2u, size);
}

TEST(Zigzag, RoundTripsAndKeepsSmallNegativesSmall) {
  const int64_t cases[] = {0, -1, 1, -2, 2, 63, -64, INT64_MAX, INT64_MIN};
  for (int64_t v : cases) {
    EXPECT_EQ(v, ZigzagDecode(ZigzagEncode(v))) << v;
  }
  EXPECT_EQ(1u, ZigzagEncode(-1));
  EXPECT_EQ(2u, ZigzagEncode(1));
  EXPECT_EQ(127u, ZigzagEncode(-64));
}

// -------------------------------------------------------- request payload --

void ExpectRequestsEqual(const service::WireRequest& a,
                         const service::WireRequest& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.op, b.op);
  EXPECT_EQ(a.instance, b.instance);
  EXPECT_EQ(a.qnum, b.qnum);
  EXPECT_EQ(a.deadline_ms, b.deadline_ms);
  EXPECT_EQ(a.mc_worlds, b.mc_worlds);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.action, b.action);
  EXPECT_EQ(a.relation, b.relation);
  EXPECT_EQ(a.row, b.row);
  EXPECT_EQ(a.maybe, b.maybe);
  EXPECT_EQ(a.cindex, b.cindex);
  EXPECT_EQ(a.cop, b.cop);
  EXPECT_EQ(a.rhs, b.rhs);
  EXPECT_EQ(a.var, b.var);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.spec, b.spec);
  EXPECT_EQ(a.replace, b.replace);
}

TEST(RequestPayload, DefaultRequestRoundTripsThroughTinyPayload) {
  service::WireRequest req;
  req.op = "ping";
  const std::string payload = EncodeRequestPayload(req);
  // Defaults are omitted: op tag + len + "ping" and nothing else.
  EXPECT_LE(payload.size(), 8u);
  auto decoded = DecodeRequestPayload(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectRequestsEqual(req, *decoded);
}

TEST(RequestPayload, AllFieldsRoundTrip) {
  service::WireRequest req;
  req.id = 123456789;
  req.op = "mutate";
  req.instance = "demo-instance";
  req.qnum = 3;
  req.deadline_ms = 2500.125;
  req.mc_worlds = 64;
  req.seed = ~0ull;
  req.action = "edit";
  req.relation = "trans_item";
  req.row = "1,2,a b c";
  req.maybe = true;
  req.cindex = -1;  // default, omitted
  req.cop = "ge";
  req.rhs = -42;
  req.var = 7;
  req.value = 1;
  req.spec = "demo=kanon:4";
  req.replace = true;
  auto decoded = DecodeRequestPayload(EncodeRequestPayload(req));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectRequestsEqual(req, *decoded);
}

TEST(RequestPayload, ReEncodeIsByteIdentical) {
  service::WireRequest req;
  req.op = "query";
  req.id = 7;
  req.instance = "case";
  req.qnum = 2;
  req.deadline_ms = 0.0;
  const std::string payload = EncodeRequestPayload(req);
  auto decoded = DecodeRequestPayload(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(payload, EncodeRequestPayload(*decoded));
}

TEST(RequestPayload, UnknownFieldsAreSkipped) {
  service::WireRequest req;
  req.op = "query";
  req.instance = "case";
  std::string payload = EncodeRequestPayload(req);
  // A future field 60 in each wiretype, appended by a newer client.
  AppendVarint(&payload, (60u << 2) | 0);  // varint
  AppendVarint(&payload, 999);
  AppendVarint(&payload, (61u << 2) | 1);  // length-prefixed
  AppendVarint(&payload, 5);
  payload += "later";
  AppendVarint(&payload, (62u << 2) | 2);  // fixed64
  payload.append(8, '\x5a');
  auto decoded = DecodeRequestPayload(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectRequestsEqual(req, *decoded);
}

TEST(RequestPayload, TruncatedPayloadIsRejected) {
  service::WireRequest req;
  req.op = "query";
  req.instance = "some-instance-name";
  req.deadline_ms = 10.0;
  const std::string payload = EncodeRequestPayload(req);
  for (size_t cut = 1; cut < payload.size(); ++cut) {
    auto decoded = DecodeRequestPayload(payload.substr(0, cut));
    // Either a typed error, or (when the cut lands between whole TLV
    // records) a request missing trailing fields — never a crash and
    // never a misparse of the fields before the cut.
    if (decoded.ok()) {
      EXPECT_TRUE(decoded->op == "query" || decoded->op.empty());
    }
  }
}

// Randomized parity sweep: the binary codec and the JSON line parser
// must agree on every request they can both express.
TEST(RequestPayload, RandomizedRequestsMatchJsonParser) {
  Rng rng(20260808);
  const char* ops[] = {"query", "ping",    "stats",   "mutate",
                       "load",  "version", "shutdown"};
  for (int iter = 0; iter < 200; ++iter) {
    service::WireRequest req;
    req.op = ops[rng.Uniform(sizeof(ops) / sizeof(ops[0]))];
    req.id = static_cast<int64_t>(rng.Uniform(1 << 20));
    if (rng.Uniform(2) == 0) req.instance = "i" + std::to_string(iter);
    req.qnum = 1 + static_cast<int>(rng.Uniform(3));
    if (rng.Uniform(2) == 0) {
      req.deadline_ms = static_cast<double>(rng.Uniform(10000)) / 8.0;
    }
    req.mc_worlds = static_cast<int>(rng.Uniform(64));
    // The JSON number path goes through a double, so only seeds up to
    // 2^53 survive both codecs; the binary codec itself is exact for all
    // 64 bits (covered by AllFieldsRoundTrip's ~0 seed).
    req.seed = rng.Next() >> 11;

    // Binary round trip preserves every field.
    auto decoded = DecodeRequestPayload(EncodeRequestPayload(req));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ExpectRequestsEqual(req, *decoded);

    // The JSON line expressing the same request parses to the same
    // WireRequest the binary codec decoded.
    std::string line = "{\"op\":\"" + req.op +
                       "\",\"id\":" + std::to_string(req.id);
    if (!req.instance.empty()) {
      line += ",\"instance\":\"" + req.instance + "\"";
    }
    line += ",\"qnum\":" + std::to_string(req.qnum);
    if (req.deadline_ms >= 0) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", req.deadline_ms);
      line += std::string(",\"deadline_ms\":") + buf;
    }
    line += ",\"mc_worlds\":" + std::to_string(req.mc_worlds);
    line += ",\"seed\":" + std::to_string(req.seed);
    line += "}";
    auto parsed = service::ParseRequestLine(line);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << " " << line;
    ExpectRequestsEqual(*parsed, *decoded);
  }
}

// ----------------------------------------------------------------- frames --

TEST(Frame, RoundTripsAndConcatenates) {
  service::WireRequest req;
  req.op = "query";
  req.id = 5;
  req.instance = "case";
  const std::string f1 = EncodeRequestFrame(req);
  const std::string f2 = EncodeResponseFrame("{\"id\":5,\"ok\":true}");
  std::string buf = f1 + f2;

  size_t consumed = 0;
  Frame frame;
  auto got = TryDecodeFrame(buf, &consumed, &frame);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(*got);
  EXPECT_EQ(f1.size(), consumed);
  EXPECT_EQ(kFrameRequest, frame.type);
  auto decoded = DecodeRequestPayload(frame.payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ("case", decoded->instance);

  buf.erase(0, consumed);
  got = TryDecodeFrame(buf, &consumed, &frame);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(*got);
  EXPECT_EQ(kFrameResponse, frame.type);
  EXPECT_EQ("{\"id\":5,\"ok\":true}", frame.payload);
  EXPECT_EQ(buf.size(), consumed);
}

TEST(Frame, ResponsePayloadIsJsonTextVerbatim) {
  // The parity-by-construction property: framing a response never alters
  // its bytes, for any JSON text including embedded quotes and unicode.
  const std::string texts[] = {
      "{\"id\":-1,\"ok\":false,\"status\":\"InvalidArgument\"}",
      "{\"id\":9,\"ok\":true,\"min\":-0.5,\"max\":12}",
      std::string("{\"s\":\"\\u0001\x7f\"}"),
  };
  for (const std::string& text : texts) {
    size_t consumed = 0;
    Frame frame;
    auto got = TryDecodeFrame(EncodeResponseFrame(text), &consumed, &frame);
    ASSERT_TRUE(got.ok() && *got);
    EXPECT_EQ(text, frame.payload);
  }
}

TEST(Frame, EveryStrictPrefixAsksForMoreBytes) {
  service::WireRequest req;
  req.op = "query";
  req.instance = "prefix-test";
  req.deadline_ms = 1.5;
  const std::string bytes = EncodeRequestFrame(req);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    size_t consumed = 123;
    Frame frame;
    auto got = TryDecodeFrame(bytes.substr(0, cut), &consumed, &frame);
    ASSERT_TRUE(got.ok()) << "prefix " << cut << ": "
                          << got.status().ToString();
    EXPECT_FALSE(*got) << "prefix " << cut << " decoded a frame";
    EXPECT_EQ(0u, consumed);
  }
}

TEST(Frame, CorruptionPastTheMagicIsDetected) {
  service::WireRequest req;
  req.op = "query";
  req.instance = "corrupt-test";
  req.qnum = 2;
  const std::string bytes = EncodeRequestFrame(req);
  // Flipping any bit of the version, type, payload, or CRC bytes must
  // fail the decode — all are under the checksum or validated directly.
  // (Length-prefix corruption may instead leave the decoder waiting for
  // bytes that never come, which also never yields a wrong frame.)
  const size_t len_prefix_end = 3 + 1;  // magic+version+type+1 varint byte
  for (size_t i = 1; i < bytes.size(); ++i) {
    if (i >= 3 && i < len_prefix_end) continue;
    std::string bad = bytes;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    size_t consumed = 0;
    Frame frame;
    auto got = TryDecodeFrame(bad, &consumed, &frame);
    EXPECT_FALSE(got.ok() && *got) << "byte " << i
                                   << " corruption went unnoticed";
  }
}

TEST(Frame, BadMagicAndVersionAndTypeAreTypedErrors) {
  const std::string good = EncodeResponseFrame("{}");
  {
    std::string bad = good;
    bad[0] = '{';  // a JSON client on a binary decode path
    size_t consumed = 0;
    Frame frame;
    EXPECT_FALSE(TryDecodeFrame(bad, &consumed, &frame).ok());
  }
  {
    std::string bad = good;
    bad[1] = '\x7e';  // unknown version
    size_t consumed = 0;
    Frame frame;
    EXPECT_FALSE(TryDecodeFrame(bad, &consumed, &frame).ok());
  }
  {
    std::string bad = good;
    bad[2] = '\x09';  // unknown frame type
    size_t consumed = 0;
    Frame frame;
    EXPECT_FALSE(TryDecodeFrame(bad, &consumed, &frame).ok());
  }
}

TEST(Frame, OversizedLengthPrefixIsRejectedNotBuffered) {
  // A hostile length prefix must fail fast, not make the server buffer
  // gigabytes waiting for a payload that will never arrive.
  std::string bytes;
  bytes.push_back(static_cast<char>(kWireMagic));
  bytes.push_back(static_cast<char>(kWireVersion));
  bytes.push_back(static_cast<char>(kFrameRequest));
  AppendVarint(&bytes, (64u << 20));  // 4x kMaxFramePayload
  size_t consumed = 0;
  Frame frame;
  EXPECT_FALSE(TryDecodeFrame(bytes, &consumed, &frame).ok());
}

TEST(Frame, TrailingGarbageAfterCrcBelongsToTheNextFrame) {
  const std::string good = EncodeResponseFrame("{\"id\":1,\"ok\":true}");
  std::string buf = good + "\xB5garbage";
  size_t consumed = 0;
  Frame frame;
  auto got = TryDecodeFrame(buf, &consumed, &frame);
  ASSERT_TRUE(got.ok() && *got);
  EXPECT_EQ(good.size(), consumed);  // garbage untouched, next decode fails
}

}  // namespace
}  // namespace licm::net
