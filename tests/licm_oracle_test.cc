// Golden-oracle property tests.
//
// For randomly generated small LICM databases and randomly chosen query
// trees, enumerate *all* valid assignments (possible worlds), evaluate the
// query in each world with the deterministic engine, and require the
// LICM + solver bounds to equal the enumerated extrema exactly. This
// exercises, end to end: the operator encodings (Algorithms 1-4), lineage
// determinism, duplicate merging, pruning, BIP formulation, and the solver.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "licm/evaluator.h"
#include "licm/worlds.h"
#include "relational/engine.h"

namespace licm {
namespace {

using rel::CmpOp;
using rel::QueryNodePtr;
using rel::Value;
using rel::ValueType;

constexpr const char* kItems[] = {"ale", "brie", "cola", "dill", "eggs"};

struct RandomDb {
  LicmDatabase db;
  uint32_t num_base_vars = 0;
};

// A random TRANSITEM-style LICM relation: a few transactions, each item a
// certain or maybe tuple; maybe-variables are sometimes shared between
// tuples; random cardinality / correlation constraints over variable
// subsets.
RandomDb MakeRandomDb(Rng* rng) {
  RandomDb out;
  LicmRelation r(rel::Schema(
      {{"tid", ValueType::kInt}, {"item", ValueType::kString}}));
  std::vector<BVar> vars;
  const int num_tids = 2 + static_cast<int>(rng->Uniform(3));
  for (int tid = 1; tid <= num_tids; ++tid) {
    const int num_items = 1 + static_cast<int>(rng->Uniform(4));
    for (int k = 0; k < num_items; ++k) {
      rel::Tuple t{static_cast<int64_t>(tid),
                   std::string(kItems[rng->Uniform(5)])};
      // Avoid duplicate (tid, item) pairs: merge semantics are tested
      // separately; here we keep the base relation a set.
      bool dup = false;
      for (const auto& existing : r.tuples()) dup |= existing == t;
      if (dup) continue;
      if (rng->Bernoulli(0.25)) {
        r.AppendUnchecked(std::move(t), Ext::Certain());
      } else if (!vars.empty() && rng->Bernoulli(0.2)) {
        // Shared variable: correlated tuples.
        r.AppendUnchecked(std::move(t),
                          Ext::Maybe(vars[rng->Uniform(vars.size())]));
      } else {
        BVar b = out.db.pool().New();
        vars.push_back(b);
        r.AppendUnchecked(std::move(t), Ext::Maybe(b));
      }
    }
  }
  // Random constraints over the base variables.
  const int num_constraints = static_cast<int>(rng->Uniform(3));
  for (int c = 0; c < num_constraints && vars.size() >= 2; ++c) {
    std::vector<BVar> subset;
    for (BVar v : vars) {
      if (rng->Bernoulli(0.5)) subset.push_back(v);
    }
    if (subset.size() < 2) continue;
    switch (rng->Uniform(3)) {
      case 0: {
        int64_t z1 = rng->UniformInt(0, 1);
        int64_t z2 =
            rng->UniformInt(z1, static_cast<int64_t>(subset.size()));
        out.db.constraints().AddCardinality(subset, z1, z2);
        break;
      }
      case 1:
        out.db.constraints().AddImplication(subset[0], subset[1]);
        break;
      case 2:
        out.db.constraints().AddMutualExclusion(subset[0], subset[1]);
        break;
    }
  }
  out.num_base_vars = out.db.pool().size();
  LICM_CHECK_OK(out.db.AddRelation("trans_item", std::move(r)));
  return out;
}

// A random aggregate query over trans_item(tid, item).
QueryNodePtr MakeRandomQuery(Rng* rng) {
  using namespace rel;
  QueryNodePtr base = Scan("trans_item");
  switch (rng->Uniform(6)) {
    case 0:
      // COUNT of selected items.
      return CountStar(Select(
          base, {{"item", CmpOp::kGe, Value(std::string(kItems[rng->Uniform(5)]))}}));
    case 1:
      // COUNT of distinct transactions owning a selected item.
      return CountStar(Project(
          Select(base, {{"item", CmpOp::kLe,
                         Value(std::string(kItems[rng->Uniform(5)]))}}),
          {"tid"}));
    case 2: {
      // COUNT of transactions with (>=|<=|=) d selected items (Query-1
      // shape, plus the <= / = encodings of Algorithm 4).
      const CmpOp ops[] = {CmpOp::kGe, CmpOp::kLe, CmpOp::kEq};
      return CountStar(CountPredicate(
          Select(base, {{"item", CmpOp::kNe,
                         Value(std::string(kItems[rng->Uniform(5)]))}}),
          "tid", ops[rng->Uniform(3)], rng->UniformInt(1, 3)));
    }
    case 3:
      // Intersection of two selections (Query-2 shape).
      return CountStar(Intersect(
          CountPredicate(Select(base, {{"item", CmpOp::kGe,
                                        Value(std::string("b"))}}),
                         "tid", CmpOp::kGe, rng->UniformInt(1, 2)),
          CountPredicate(Select(base, {{"item", CmpOp::kLe,
                                        Value(std::string("d"))}}),
                         "tid", CmpOp::kGe, 1)));
    case 4:
      // Join shape (Query-3 flavour): transactions sharing an item with a
      // popular item set.
      return CountStar(Project(
          Join(base,
               CountPredicate(base, "item", CmpOp::kGe,
                              rng->UniformInt(1, 2)),
               {{"item", "item"}}),
          {"tid"}));
    default:
      // SUM over tid of a selection (constant numeric attribute).
      return Sum(Select(base, {{"item", CmpOp::kGe,
                                Value(std::string(kItems[rng->Uniform(5)]))}}),
                 "tid");
  }
}

class OracleTest : public ::testing::TestWithParam<int> {};

TEST_P(OracleTest, BoundsMatchExhaustiveEnumeration) {
  // LICM_FUZZ_SEED shifts the whole sweep, and every failure names its
  // seed so one case replays in isolation.
  const uint64_t seed = FuzzSeedFromEnv(0xabc000) + GetParam();
  SCOPED_TRACE("replay: LICM_FUZZ_SEED=" + std::to_string(seed - GetParam()) +
               " (case seed " + std::to_string(seed) + ")");
  Rng rng(seed);
  RandomDb rd = MakeRandomDb(&rng);
  QueryNodePtr query = MakeRandomQuery(&rng);

  // Oracle: evaluate in every possible world.
  auto assignments =
      EnumerateValidAssignments(rd.db.constraints(), rd.num_base_vars);
  ASSERT_TRUE(assignments.ok());
  double oracle_min = 1e300, oracle_max = -1e300;
  for (const auto& a : *assignments) {
    rel::Database world = rd.db.Instantiate(a);
    auto v = rel::EvaluateAggregate(*query, world);
    ASSERT_TRUE(v.ok()) << v.status().ToString() << "\n" << query->ToString();
    oracle_min = std::min(oracle_min, *v);
    oracle_max = std::max(oracle_max, *v);
  }

  auto ans = AnswerAggregate(*query, rd.db);
  if (assignments->empty()) {
    ASSERT_FALSE(ans.ok());
    EXPECT_EQ(ans.status().code(), StatusCode::kInfeasible);
    return;
  }
  ASSERT_TRUE(ans.ok()) << ans.status().ToString() << "\n"
                        << query->ToString();
  EXPECT_TRUE(ans->bounds.min.exact);
  EXPECT_TRUE(ans->bounds.max.exact);
  EXPECT_DOUBLE_EQ(ans->bounds.min.value, oracle_min) << query->ToString();
  EXPECT_DOUBLE_EQ(ans->bounds.max.value, oracle_max) << query->ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleTest, ::testing::Range(0, 150));

// The same property with pruning disabled, on a smaller sweep: catches
// pruning-specific soundness bugs by differential comparison.
class OracleNoPruneTest : public ::testing::TestWithParam<int> {};

TEST_P(OracleNoPruneTest, PrunedAndUnprunedAgree) {
  const uint64_t seed = FuzzSeedFromEnv(0xdef000) + GetParam();
  SCOPED_TRACE("replay: LICM_FUZZ_SEED=" + std::to_string(seed - GetParam()) +
               " (case seed " + std::to_string(seed) + ")");
  Rng rng(seed);
  RandomDb rd = MakeRandomDb(&rng);
  QueryNodePtr query = MakeRandomQuery(&rng);

  auto assignments =
      EnumerateValidAssignments(rd.db.constraints(), rd.num_base_vars);
  ASSERT_TRUE(assignments.ok());
  if (assignments->empty()) return;

  AnswerOptions no_prune;
  no_prune.bounds.prune = false;
  auto a1 = AnswerAggregate(*query, rd.db);
  auto a2 = AnswerAggregate(*query, rd.db, no_prune);
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a2.ok());
  EXPECT_DOUBLE_EQ(a1->bounds.min.value, a2->bounds.min.value);
  EXPECT_DOUBLE_EQ(a1->bounds.max.value, a2->bounds.max.value);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleNoPruneTest, ::testing::Range(0, 50));

}  // namespace
}  // namespace licm
