// Tests for the always-on metrics registry (common/metrics.h): histogram
// quantile accuracy against an exact sorted reference, bucket-boundary
// edge cases, multithreaded counting (run under TSan in CI), and the two
// render formats.
//
// The registry is process-global, so every test uses metric names under
// a test_-prefixed family and asserts exact values only on series it
// created itself.
#include "common/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <thread>
#include <vector>

#include "service/json.h"

namespace licm::metrics {
namespace {

// Tests that assert observed values self-skip in LICM_METRICS_DISABLED
// builds, where every update is a no-op by design; the structural tests
// (bucket math, pointer stability, rendering shape) still run there.
#if defined(LICM_METRICS_DISABLED)
#define SKIP_IF_METRICS_DISABLED() \
  GTEST_SKIP() << "metrics updates compiled out"
#else
#define SKIP_IF_METRICS_DISABLED() \
  do {                             \
  } while (false)
#endif

// Exact reference quantile, matching the snapshot's rank convention
// (rank = q * (count - 1), linear interpolation between order stats).
double ExactQuantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

TEST(Histogram, QuantilesTrackExactReferenceWithinBucketWidth) {
  SKIP_IF_METRICS_DISABLED();
  std::mt19937_64 rng(7);
  // Mixed regimes: sub-millisecond, uniform mid-range, and a heavy tail,
  // like a realistic latency distribution.
  std::uniform_real_distribution<double> uniform(0.5, 200.0);
  std::lognormal_distribution<double> tail(3.0, 1.2);
  std::vector<double> values;
  Histogram h;
  for (int i = 0; i < 20000; ++i) {
    const double v = (i % 3 == 0) ? tail(rng) : uniform(rng);
    values.push_back(v);
    h.Observe(v);
  }
  const HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(static_cast<int64_t>(values.size()), snap.count);
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const double exact = ExactQuantile(values, q);
    const double est = snap.Quantile(q);
    // Sub-bucket width bounds the relative error at 1/kSubBuckets; the
    // margin covers the exact reference interpolating across a bucket
    // boundary between adjacent order statistics.
    EXPECT_NEAR(est, exact, exact * (1.05 / Histogram::kSubBuckets) + 1e-9)
        << "q=" << q;
  }
  // Sum is exact (modulo fp addition order), so the mean is too.
  double sum = 0;
  for (double v : values) sum += v;
  EXPECT_NEAR(snap.sum, sum, 1e-6 * sum);
}

TEST(Histogram, BucketBoundariesRoundTrip) {
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> exp_range(-18.0, 42.0);
  for (int i = 0; i < 5000; ++i) {
    const double v = std::exp2(exp_range(rng));
    const int idx = Histogram::BucketIndex(v);
    ASSERT_GT(idx, 0) << v;
    ASSERT_LT(idx, Histogram::kBuckets - 1) << v;
    EXPECT_GE(v, Histogram::BucketLowerBound(idx)) << v;
    EXPECT_LT(v, Histogram::BucketUpperBound(idx)) << v;
  }
  // Bucket bounds tile the range: each upper bound is the next lower
  // bound.
  for (int idx = 1; idx < Histogram::kBuckets - 2; ++idx) {
    EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(idx),
                     Histogram::BucketLowerBound(idx + 1))
        << idx;
  }
}

TEST(Histogram, EdgeValuesLandInUnderflowAndOverflow) {
  SKIP_IF_METRICS_DISABLED();
  EXPECT_EQ(0, Histogram::BucketIndex(0.0));
  EXPECT_EQ(0, Histogram::BucketIndex(-1.0));
  EXPECT_EQ(0, Histogram::BucketIndex(1e-30));
  EXPECT_EQ(0, Histogram::BucketIndex(std::nan("")));
  EXPECT_EQ(Histogram::kBuckets - 1, Histogram::BucketIndex(1e300));
  EXPECT_EQ(Histogram::kBuckets - 1,
            Histogram::BucketIndex(std::numeric_limits<double>::infinity()));

  Histogram h;
  h.Observe(0.0);
  h.Observe(-3.0);
  h.Observe(1e300);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(3, snap.count);
  EXPECT_EQ(2, snap.buckets.front());
  EXPECT_EQ(1, snap.buckets.back());
  // Quantiles stay finite even when everything is in the overflow
  // bucket: the walk clamps to the bucket's lower bound.
  EXPECT_TRUE(std::isfinite(snap.Quantile(0.999)));
}

TEST(Histogram, EmptySnapshotIsZeroEverywhere) {
  Histogram h;
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(0, snap.count);
  EXPECT_EQ(0.0, snap.Quantile(0.5));
  EXPECT_EQ(0.0, snap.Min());
  EXPECT_EQ(0.0, snap.Max());
  EXPECT_EQ(0.0, snap.Mean());
}

// Multithreaded hammer: totals must be exact across shards. CI runs this
// binary under TSan, which also checks the relaxed-atomics discipline.
TEST(Metrics, ConcurrentUpdatesCountExactly) {
  SKIP_IF_METRICS_DISABLED();
  Counter counter;
  Gauge gauge;
  Histogram hist;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Increment();
        gauge.Add(1.0);
        hist.Observe(static_cast<double>((t * kPerThread + i) % 1000) + 0.5);
      }
      for (int i = 0; i < kPerThread; ++i) gauge.Add(-1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(kThreads * kPerThread, counter.Value());
  EXPECT_EQ(0.0, gauge.Value());
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(kThreads * kPerThread, snap.count);
}

TEST(Registry, SeriesPointersAreStableAndLabelScoped) {
  SKIP_IF_METRICS_DISABLED();
  MetricsRegistry& reg = MetricsRegistry::Default();
  Counter* a = reg.GetCounter("test_registry_total", {{"case", "a"}});
  Counter* b = reg.GetCounter("test_registry_total", {{"case", "b"}});
  EXPECT_NE(a, b);
  // Same name+labels -> same series, and label order does not matter.
  EXPECT_EQ(a, reg.GetCounter("test_registry_total", {{"case", "a"}}));
  Counter* multi = reg.GetCounter("test_registry_multilabel_total",
                                  {{"x", "1"}, {"y", "2"}});
  EXPECT_EQ(multi, reg.GetCounter("test_registry_multilabel_total",
                                  {{"y", "2"}, {"x", "1"}}));
  a->Increment(3);
  b->Increment(4);
  EXPECT_EQ(3, a->Value());
  EXPECT_EQ(4, b->Value());
  EXPECT_EQ(7, reg.CounterTotal("test_registry_total"));
  EXPECT_EQ(0, reg.CounterTotal("test_registry_never_created"));
}

TEST(Registry, RenderPrometheusExposesAllThreeTypes) {
  SKIP_IF_METRICS_DISABLED();
  MetricsRegistry& reg = MetricsRegistry::Default();
  reg.GetCounter("test_prom_hits_total", {{"kind", "x"}})->Increment(5);
  reg.GetGauge("test_prom_depth")->Set(2.5);
  Histogram* h = reg.GetHistogram("test_prom_latency_ms");
  h->Observe(1.0);
  h->Observe(100.0);
  const std::string text = reg.RenderPrometheus();
  EXPECT_NE(std::string::npos,
            text.find("# TYPE test_prom_hits_total counter"));
  EXPECT_NE(std::string::npos,
            text.find("test_prom_hits_total{kind=\"x\"} 5"));
  EXPECT_NE(std::string::npos, text.find("# TYPE test_prom_depth gauge"));
  EXPECT_NE(std::string::npos, text.find("test_prom_depth 2.5"));
  EXPECT_NE(std::string::npos,
            text.find("# TYPE test_prom_latency_ms histogram"));
  EXPECT_NE(std::string::npos,
            text.find("test_prom_latency_ms_bucket{le=\"+Inf\"} 2"));
  EXPECT_NE(std::string::npos, text.find("test_prom_latency_ms_count 2"));
}

TEST(Registry, RenderJsonParsesAndCarriesQuantiles) {
  SKIP_IF_METRICS_DISABLED();
  MetricsRegistry& reg = MetricsRegistry::Default();
  Histogram* h = reg.GetHistogram("test_json_latency_ms");
  for (int i = 1; i <= 100; ++i) h->Observe(static_cast<double>(i));
  auto parsed = service::ParseJson(reg.RenderJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const service::JsonValue* hists = parsed->Find("histograms");
  ASSERT_NE(nullptr, hists);
  bool found = false;
  for (const auto& entry : hists->array) {
    auto name = entry.GetString("name", "");
    ASSERT_TRUE(name.ok());
    if (*name != "test_json_latency_ms") continue;
    found = true;
    EXPECT_EQ(100, entry.GetInt("count", 0).value());
    const double p50 = entry.GetNumber("p50", 0).value();
    EXPECT_NEAR(50.0, p50, 50.0 / Histogram::kSubBuckets + 1e-9);
    EXPECT_LE(p50, entry.GetNumber("p99", 0).value());
  }
  EXPECT_TRUE(found);
}

#if defined(LICM_METRICS_DISABLED)
TEST(Registry, DisabledBuildRendersZeros) {
  MetricsRegistry& reg = MetricsRegistry::Default();
  Counter* c = reg.GetCounter("test_disabled_total");
  c->Increment(10);
  EXPECT_EQ(0, c->Value());
}
#endif

}  // namespace
}  // namespace licm::metrics
