// Short-budget differential fuzzing smoke (DESIGN.md §9).
//
// Runs the generator -> invariant pipeline over a few hundred seeded cases
// so every PR exercises the possible-world oracle, the metamorphic
// toggles, and the timeout semantics end to end. Case count scales with
// the LICM_FUZZ_CASES environment variable (sanitizer CI lowers it) and
// the base seed with LICM_FUZZ_SEED, so any CI failure replays locally
// from the seed printed in the assertion message.
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "licm/evaluator.h"
#include "testing/generator.h"
#include "testing/invariants.h"
#include "testing/oracle.h"
#include "testing/reducer.h"
#include "testing/repro.h"

namespace licm::testing {
namespace {

int64_t CasesFromEnv(int64_t fallback) {
  const char* env = std::getenv("LICM_FUZZ_CASES");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const int64_t parsed = std::strtoll(env, &end, 0);
  return (end != nullptr && *end == '\0' && parsed > 0) ? parsed : fallback;
}

// On failure: reduce, write the repro next to the test binary, and return
// a message with everything needed to chase it.
std::string FailureArtifacts(const FuzzCase& c, const InvariantReport& r) {
  ReduceResult red = ReduceForInvariant(c, r.name);
  const std::string path = "fuzz_repro_" + std::to_string(c.seed) + ".txt";
  const Status st = WriteReproFile(red.reduced, path);
  return "seed=" + std::to_string(c.seed) + " invariant=" + r.name + ": " +
         r.detail + "\nreplay: LICM_FUZZ_SEED=" + std::to_string(c.seed) +
         " licm_fuzz --cases 1 --invariant " + r.name +
         "\nrepro: " + (st.ok() ? path : "<write failed>");
}

TEST(FuzzSmoke, AllInvariantsOverSeededCases) {
  const uint64_t base = FuzzSeedFromEnv(0xf022);
  const int64_t cases = CasesFromEnv(200);
  for (int64_t i = 0; i < cases; ++i) {
    const FuzzCase c = GenerateCase(base + static_cast<uint64_t>(i));
    auto reports = CheckCase(c);
    ASSERT_TRUE(reports.ok())
        << "seed=" << c.seed << ": " << reports.status().ToString();
    for (const InvariantReport& r : *reports) {
      EXPECT_NE(r.verdict, Verdict::kFail) << FailureArtifacts(c, r);
    }
  }
}

// Timeout semantics as a standalone property (satellite of the timeout
// invariant): an already-expired deadline must yield kTimeLimit with
// valid loose bounds — or a fast genuine answer — never a wrong
// kInfeasible, on every feasible fuzz instance.
TEST(FuzzSmoke, ExpiredDeadlineNeverFeignsInfeasibility) {
  const uint64_t base = FuzzSeedFromEnv(0xdead0);
  const int64_t cases = CasesFromEnv(200) / 4;
  for (int64_t i = 0; i < cases; ++i) {
    const FuzzCase c = GenerateCase(base + static_cast<uint64_t>(i));
    const auto oracle = OracleAggregate(c);
    ASSERT_TRUE(oracle.ok()) << "seed=" << c.seed;
    if (!oracle->feasible) continue;

    const Deadline expired = Deadline::After(0.0);
    AnswerOptions opt;
    opt.bounds.mip.num_threads = 1;
    opt.bounds.mip.deadline = &expired;
    auto ans = AnswerAggregate(*c.query, c.db, opt);
    ASSERT_TRUE(ans.ok()) << "seed=" << c.seed
                          << ": feasible instance reported "
                          << ans.status().ToString();
    // Whatever the solver managed before the deadline, the proved bounds
    // must still envelope the true range.
    EXPECT_LE(ans->bounds.min.proved, oracle->min) << "seed=" << c.seed;
    EXPECT_GE(ans->bounds.max.proved, oracle->max) << "seed=" << c.seed;
  }
}

// Repro format: serialize -> parse -> serialize is the identity, and the
// parsed case is behaviorally identical to the original (same reports
// from every invariant).
TEST(FuzzSmoke, ReproRoundTrip) {
  const uint64_t base = FuzzSeedFromEnv(0x4e40);
  const int64_t cases = CasesFromEnv(200) / 8;
  for (int64_t i = 0; i < cases; ++i) {
    const FuzzCase c = GenerateCase(base + static_cast<uint64_t>(i));
    const std::string text1 = SerializeCase(c);
    auto parsed = ParseCase(text1);
    ASSERT_TRUE(parsed.ok()) << "seed=" << c.seed << ": "
                             << parsed.status().ToString() << "\n"
                             << text1;
    EXPECT_EQ(text1, SerializeCase(*parsed)) << "seed=" << c.seed;

    auto r1 = CheckCase(c);
    auto r2 = CheckCase(*parsed);
    ASSERT_TRUE(r1.ok() && r2.ok()) << "seed=" << c.seed;
    ASSERT_EQ(r1->size(), r2->size());
    for (size_t k = 0; k < r1->size(); ++k) {
      EXPECT_EQ((*r1)[k].verdict, (*r2)[k].verdict)
          << "seed=" << c.seed << " invariant=" << (*r1)[k].name << ": "
          << (*r1)[k].detail << " vs " << (*r2)[k].detail;
    }
  }
}

// Reducer sanity on a synthetic predicate: "the relation still has a
// maybe tuple and the constraint set is non-empty" must shrink to one
// tuple and one constraint regardless of the starting size.
TEST(FuzzSmoke, ReducerShrinksSyntheticFailure) {
  const uint64_t base = FuzzSeedFromEnv(0x4ed0);
  int reduced_any = 0;
  for (uint64_t i = 0; i < 20; ++i) {
    const FuzzCase c = GenerateCase(base + i);
    const auto pred = [](const FuzzCase& cand) {
      auto r = cand.db.GetRelation(kFuzzRelation);
      if (!r.ok()) return false;
      bool maybe = false;
      for (size_t k = 0; k < (*r)->size(); ++k) {
        maybe |= !(*r)->ext(k).certain();
      }
      return maybe && cand.db.constraints().size() > 0;
    };
    if (!pred(c)) continue;
    const ReduceResult res = ReduceCase(c, pred);
    EXPECT_TRUE(pred(res.reduced)) << "seed=" << c.seed;
    EXPECT_EQ(res.tuples_after, 1u) << "seed=" << c.seed;
    EXPECT_EQ(res.constraints_after, 1u) << "seed=" << c.seed;
    EXPECT_LE(res.vars_after, 2u) << "seed=" << c.seed;
    ++reduced_any;
  }
  EXPECT_GT(reduced_any, 0) << "no generated case had a maybe tuple and a "
                               "constraint; generator defaults changed?";
}

// The reducer leaves a case alone when the predicate does not hold on the
// input (callers only reduce observed failures).
TEST(FuzzSmoke, ReducerRequiresReproducingInput) {
  const FuzzCase c = GenerateCase(FuzzSeedFromEnv(7));
  const ReduceResult res =
      ReduceCase(c, [](const FuzzCase&) { return false; });
  EXPECT_EQ(res.tuples_after, res.tuples_before);
  EXPECT_EQ(res.constraints_after, res.constraints_before);
  EXPECT_EQ(res.rounds, 0);
}

}  // namespace
}  // namespace licm::testing
