// End-to-end tests for the Appendix encoders: LICM databases built from
// anonymized data, Monte-Carlo sampling over them, and the central sanity
// property that the original data is always one of the possible worlds and
// every sampled/extreme answer brackets the original answer.
#include "anonymize/licm_encode.h"

#include <gtest/gtest.h>

#include "licm/evaluator.h"
#include "relational/engine.h"
#include "sampler/monte_carlo.h"

namespace licm::anonymize {
namespace {

using rel::CmpOp;
using rel::Value;

data::TransactionDataset SmallDataset(uint32_t txns = 60, uint32_t items = 32,
                                      uint64_t seed = 17) {
  data::GeneratorConfig c;
  c.num_transactions = txns;
  c.num_items = items;
  c.mean_size = 3.5;
  c.num_locations = 10;
  c.num_prices = 8;
  c.seed = seed;
  return data::GenerateTransactions(c);
}

// COUNT of transactions at loc < 5 containing >= 1 item with price < 4,
// over the flattened trans_item view (the paper's Query 1 shape).
rel::QueryNodePtr Query1FlatView() {
  return rel::CountStar(rel::CountPredicate(
      rel::Select(rel::Scan("trans_item"),
                  {{"loc", CmpOp::kLt, Value(int64_t{5})},
                   {"price", CmpOp::kLt, Value(int64_t{4})}}),
      "tid", CmpOp::kGe, 1));
}

rel::QueryNodePtr Query1BipartiteView() {
  return rel::CountStar(rel::CountPredicate(
      BipartiteTransItemView({{"loc", CmpOp::kLt, Value(int64_t{5})}},
                             {{"price", CmpOp::kLt, Value(int64_t{4})}}),
      "tid", CmpOp::kGe, 1));
}

double OriginalAnswer(const data::TransactionDataset& d,
                      const rel::QueryNode& q) {
  rel::Database db;
  LICM_CHECK_OK(db.Add("trans_item", d.ToTransItem()));
  auto v = rel::EvaluateAggregate(q, db);
  LICM_CHECK_OK(v.status());
  return *v;
}

// Shared battery: original world valid; LICM bounds bracket MC bounds and
// the original answer; MC worlds satisfy the constraint set.
void RunBattery(const EncodedDb& enc, const data::TransactionDataset& d,
                const rel::QueryNodePtr& query, double original_answer) {
  // (1) Original world satisfies the constraints.
  ASSERT_EQ(enc.original_world.size(), enc.db.pool().size());
  EXPECT_TRUE(enc.db.constraints().Satisfied(enc.original_world));

  // (2) Original-world instantiation answers the query with the original
  // answer (for generalization/suppression the instantiation is the
  // original flattened relation; for bipartite it composes to it).
  rel::Database world = enc.db.Instantiate(enc.original_world);
  auto v = rel::EvaluateAggregate(*query, world);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_DOUBLE_EQ(*v, original_answer);

  // (3) MC samples are valid worlds and their answers land inside the LICM
  // bounds; the original answer does too. Proved bounds are valid outer
  // bounds even if the solver hit its time limit (permutation-encoded
  // instances can be solver-hard, as the paper observed for its Query 3).
  sampler::MonteCarloOptions mco;
  mco.num_worlds = 12;
  auto mc = sampler::MonteCarloBounds(enc.db, enc.structure, *query, mco);
  ASSERT_TRUE(mc.ok()) << mc.status().ToString();

  AnswerOptions opts;
  opts.bounds.mip.time_limit_seconds = 20.0;
  auto ans = AnswerAggregate(*query, enc.db, opts);
  ASSERT_TRUE(ans.ok()) << ans.status().ToString();
  EXPECT_LE(ans->bounds.min.proved, mc->min + 1e-9);
  EXPECT_GE(ans->bounds.max.proved, mc->max - 1e-9);
  EXPECT_LE(ans->bounds.min.proved, original_answer + 1e-9);
  EXPECT_GE(ans->bounds.max.proved, original_answer - 1e-9);
  if (ans->bounds.min.exact && ans->bounds.max.exact) {
    EXPECT_LE(ans->bounds.min.value, mc->min + 1e-9);
    EXPECT_GE(ans->bounds.max.value, mc->max - 1e-9);
  }
  // Incumbent answers are real possible-world answers: within the range.
  if (ans->bounds.min.has_world) {
    EXPECT_GE(ans->bounds.min.value, ans->bounds.min.proved - 1e-9);
    EXPECT_LE(ans->bounds.min.value, ans->bounds.max.proved + 1e-9);
  }

  // (4) Structure-drawn worlds satisfy the linear constraints.
  Rng rng(99);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(enc.db.constraints().Satisfied(enc.structure.Sample(&rng)));
  }
}

class EncodeGeneralizedSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(EncodeGeneralizedSweep, KmEndToEnd) {
  auto d = SmallDataset();
  Hierarchy h = Hierarchy::BuildUniform(d.num_items, 4);
  auto anon = KmAnonymize(d, h, {GetParam(), 2});
  ASSERT_TRUE(anon.ok());
  auto enc = EncodeGeneralized(*anon, h, d);
  ASSERT_TRUE(enc.ok()) << enc.status().ToString();
  RunBattery(*enc, d, Query1FlatView(), OriginalAnswer(d, *Query1FlatView()));
}

TEST_P(EncodeGeneralizedSweep, KAnonymityEndToEnd) {
  auto d = SmallDataset();
  Hierarchy h = Hierarchy::BuildUniform(d.num_items, 4);
  auto anon = KAnonymize(d, h, {GetParam()});
  ASSERT_TRUE(anon.ok());
  auto enc = EncodeGeneralized(*anon, h, d);
  ASSERT_TRUE(enc.ok()) << enc.status().ToString();
  RunBattery(*enc, d, Query1FlatView(), OriginalAnswer(d, *Query1FlatView()));
}

INSTANTIATE_TEST_SUITE_P(K, EncodeGeneralizedSweep,
                         ::testing::Values(2, 4, 8));

class EncodeBipartiteSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(EncodeBipartiteSweep, EndToEnd) {
  auto d = SmallDataset(20, 24);
  auto groups = SafeGrouping(d, {GetParam(), 2, 3});
  ASSERT_TRUE(groups.ok());
  auto enc = EncodeBipartite(*groups, d);
  ASSERT_TRUE(enc.ok()) << enc.status().ToString();
  RunBattery(*enc, d, Query1BipartiteView(),
             OriginalAnswer(d, *Query1FlatView()));
}

INSTANTIATE_TEST_SUITE_P(K, EncodeBipartiteSweep, ::testing::Values(2, 4));

TEST(EncodeBipartite, SmallInstanceSolvesExactly) {
  auto d = SmallDataset(20, 24);
  auto groups = SafeGrouping(d, {2, 2, 3});
  ASSERT_TRUE(groups.ok());
  auto enc = EncodeBipartite(*groups, d);
  ASSERT_TRUE(enc.ok());
  AnswerOptions opts;
  opts.bounds.mip.time_limit_seconds = 60.0;
  auto ans = AnswerAggregate(*Query1BipartiteView(), enc->db, opts);
  ASSERT_TRUE(ans.ok());
  EXPECT_TRUE(ans->bounds.min.exact);
  EXPECT_TRUE(ans->bounds.max.exact);
  EXPECT_LE(ans->bounds.min.value, ans->bounds.max.value);
}

TEST(EncodeBipartite, ViewComposesToOriginalUnderIdentity) {
  auto d = SmallDataset(30, 24);
  auto groups = SafeGrouping(d, {3, 2, 3});
  ASSERT_TRUE(groups.ok());
  auto enc = EncodeBipartite(*groups, d);
  ASSERT_TRUE(enc.ok());
  rel::Database world = enc->db.Instantiate(enc->original_world);
  auto view = rel::Evaluate(*BipartiteTransItemView(), world);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  rel::Relation original = d.ToTransItem();
  original.Deduplicate();
  EXPECT_TRUE(view->SetEquals(original));
}

TEST(EncodeSuppressed, EndToEnd) {
  auto d = SmallDataset(40, 40);
  auto anon = SuppressRareItems(d, {3});
  ASSERT_TRUE(anon.ok());
  ASSERT_FALSE(anon->suppressed_items.empty());
  auto enc = EncodeSuppressed(*anon, d);
  ASSERT_TRUE(enc.ok()) << enc.status().ToString();
  RunBattery(*enc, d, Query1FlatView(), OriginalAnswer(d, *Query1FlatView()));
}

TEST(EncodeGeneralized, BlowupMatchesExpansionStat) {
  auto d = SmallDataset();
  Hierarchy h = Hierarchy::BuildUniform(d.num_items, 4);
  auto anon = KmAnonymize(d, h, {4, 2});
  ASSERT_TRUE(anon.ok());
  auto enc = EncodeGeneralized(*anon, h, d);
  ASSERT_TRUE(enc.ok());
  auto stats = anon->ComputeStats(h);
  const LicmRelation& r = *enc->db.GetRelation("trans_item").value();
  EXPECT_EQ(r.size(), stats.exact_items + stats.generalized_nodes +
                          stats.expansion);
  EXPECT_EQ(enc->db.pool().size(),
            stats.generalized_nodes + stats.expansion);
}

// Monte-Carlo option validation.
TEST(MonteCarlo, RejectsBadOptions) {
  auto d = SmallDataset(20, 16);
  Hierarchy h = Hierarchy::BuildUniform(d.num_items, 4);
  auto anon = KmAnonymize(d, h, {2, 1});
  ASSERT_TRUE(anon.ok());
  auto enc = EncodeGeneralized(*anon, h, d);
  ASSERT_TRUE(enc.ok());
  sampler::MonteCarloOptions mco;
  mco.num_worlds = 0;
  EXPECT_FALSE(sampler::MonteCarloBounds(enc->db, enc->structure,
                                         *Query1FlatView(), mco)
                   .ok());
}

TEST(Sampler, RejectionSamplerFindsValidWorlds) {
  ConstraintSet cs;
  cs.AddCardinality({0, 1, 2, 3}, 1, 2);
  Rng rng(5);
  for (int i = 0; i < 5; ++i) {
    auto a = sampler::SampleValidAssignment(cs, 4, &rng);
    ASSERT_TRUE(a.ok());
    EXPECT_TRUE(cs.Satisfied(*a));
  }
}

TEST(Sampler, RejectionSamplerGivesUpOnContradiction) {
  ConstraintSet cs;
  cs.AddFix(0, 1);
  cs.AddFix(0, 0);
  Rng rng(5);
  EXPECT_FALSE(sampler::SampleValidAssignment(cs, 1, &rng, 100).ok());
}

TEST(Structure, ValidateCatchesOverlapsAndBadBounds) {
  sampler::WorldStructure s;
  s.num_vars = 4;
  s.cardinality_blocks.push_back({{0, 1}, 1, -1});
  s.cardinality_blocks.push_back({{1, 2}, 1, -1});  // overlap on var 1
  EXPECT_FALSE(s.Validate().ok());

  sampler::WorldStructure s2;
  s2.num_vars = 2;
  s2.cardinality_blocks.push_back({{0, 1}, 3, -1});  // z1 > n
  EXPECT_FALSE(s2.Validate().ok());

  sampler::WorldStructure s3;
  s3.num_vars = 3;
  s3.permutation_blocks.push_back({2, {0, 1, 2}});  // k*k != 3
  EXPECT_FALSE(s3.Validate().ok());
}

TEST(Structure, SampleRespectsCardinality) {
  sampler::WorldStructure s;
  s.num_vars = 6;
  s.cardinality_blocks.push_back({{0, 1, 2, 3, 4}, 2, 3});
  Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    auto a = s.Sample(&rng);
    int sum = a[0] + a[1] + a[2] + a[3] + a[4];
    EXPECT_GE(sum, 2);
    EXPECT_LE(sum, 3);
  }
}

TEST(Structure, SamplePermutationIsBijection) {
  sampler::WorldStructure s;
  s.num_vars = 9;
  sampler::PermutationBlock b;
  b.k = 3;
  b.vars = {0, 1, 2, 3, 4, 5, 6, 7, 8};
  s.permutation_blocks.push_back(b);
  Rng rng(8);
  for (int i = 0; i < 30; ++i) {
    auto a = s.Sample(&rng);
    for (int row = 0; row < 3; ++row) {
      EXPECT_EQ(a[row * 3] + a[row * 3 + 1] + a[row * 3 + 2], 1);
      EXPECT_EQ(a[row] + a[3 + row] + a[6 + row], 1);
    }
  }
}

}  // namespace
}  // namespace licm::anonymize
