// Unit tests for the deterministic relational substrate: values, schemas,
// relations, and query-tree evaluation.
#include "relational/engine.h"

#include <gtest/gtest.h>

namespace licm::rel {
namespace {

Schema TransItemSchema() {
  return Schema({{"tid", ValueType::kInt}, {"item", ValueType::kString}});
}

Relation SampleTransItem() {
  Relation r(TransItemSchema());
  LICM_CHECK_OK(r.Append({int64_t{1}, std::string("beer")}));
  LICM_CHECK_OK(r.Append({int64_t{1}, std::string("wine")}));
  LICM_CHECK_OK(r.Append({int64_t{1}, std::string("shampoo")}));
  LICM_CHECK_OK(r.Append({int64_t{2}, std::string("wine")}));
  LICM_CHECK_OK(r.Append({int64_t{2}, std::string("diapers")}));
  LICM_CHECK_OK(r.Append({int64_t{3}, std::string("wine")}));
  return r;
}

Database SampleDb() {
  Database db;
  LICM_CHECK_OK(db.Add("trans_item", SampleTransItem()));
  return db;
}

// ---- Value / Schema ----

TEST(Value, CompareMixedNumerics) {
  EXPECT_EQ(Compare(Value(int64_t{3}), Value(3.0)), 0);
  EXPECT_LT(Compare(Value(int64_t{2}), Value(2.5)), 0);
  EXPECT_GT(Compare(Value(3.5), Value(int64_t{3})), 0);
}

TEST(Value, CompareStrings) {
  EXPECT_LT(Compare(Value(std::string("a")), Value(std::string("b"))), 0);
  EXPECT_EQ(Compare(Value(std::string("x")), Value(std::string("x"))), 0);
}

TEST(Schema, IndexOfAndCheck) {
  Schema s = TransItemSchema();
  EXPECT_EQ(s.IndexOf("item").value(), 1u);
  EXPECT_FALSE(s.IndexOf("nope").ok());
  EXPECT_TRUE(s.Check({int64_t{1}, std::string("x")}).ok());
  EXPECT_FALSE(s.Check({std::string("x"), int64_t{1}}).ok());
  EXPECT_FALSE(s.Check({int64_t{1}}).ok());
}

TEST(Relation, RejectsBadTuple) {
  Relation r(TransItemSchema());
  EXPECT_FALSE(r.Append({int64_t{1}}).ok());
  EXPECT_FALSE(r.Append({int64_t{1}, int64_t{2}}).ok());
}

TEST(Relation, DeduplicatePreservesOrder) {
  Relation r(TransItemSchema());
  LICM_CHECK_OK(r.Append({int64_t{1}, std::string("a")}));
  LICM_CHECK_OK(r.Append({int64_t{2}, std::string("b")}));
  LICM_CHECK_OK(r.Append({int64_t{1}, std::string("a")}));
  r.Deduplicate();
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(std::get<int64_t>(r.rows()[0][0]), 1);
  EXPECT_EQ(std::get<int64_t>(r.rows()[1][0]), 2);
}

// ---- Operators ----

TEST(Engine, ScanUnknownRelationFails) {
  Database db;
  auto r = Evaluate(*Scan("missing"), db);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Engine, SelectConjunction) {
  Database db = SampleDb();
  auto q = Select(Scan("trans_item"),
                  {{"tid", CmpOp::kEq, Value(int64_t{1})},
                   {"item", CmpOp::kEq, Value(std::string("wine"))}});
  auto r = Evaluate(*q, db);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);
}

TEST(Engine, SelectRangePredicates) {
  Database db = SampleDb();
  auto q = Select(Scan("trans_item"), {{"tid", CmpOp::kGe, Value(int64_t{2})},
                                       {"tid", CmpOp::kLt, Value(int64_t{3})}});
  auto r = Evaluate(*q, db);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
}

TEST(Engine, SelectUnknownColumnFails) {
  Database db = SampleDb();
  auto q = Select(Scan("trans_item"), {{"ghost", CmpOp::kEq, Value(int64_t{0})}});
  EXPECT_FALSE(Evaluate(*q, db).ok());
}

TEST(Engine, ProjectDeduplicates) {
  Database db = SampleDb();
  auto r = Evaluate(*Project(Scan("trans_item"), {"tid"}), db);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);  // tids 1, 2, 3
}

TEST(Engine, ProjectReordersColumns) {
  Database db = SampleDb();
  auto r = Evaluate(*Project(Scan("trans_item"), {"item", "tid"}), db);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->schema().column(0).name, "item");
  EXPECT_EQ(r->schema().column(1).name, "tid");
}

TEST(Engine, IntersectRequiresMatchingSchemas) {
  Database db = SampleDb();
  auto bad = Intersect(Scan("trans_item"),
                       Project(Scan("trans_item"), {"tid"}));
  EXPECT_FALSE(Evaluate(*bad, db).ok());
}

TEST(Engine, IntersectFindsCommonTuples) {
  Database db = SampleDb();
  auto left = Select(Scan("trans_item"),
                     {{"item", CmpOp::kEq, Value(std::string("wine"))}});
  auto right = Select(Scan("trans_item"),
                      {{"tid", CmpOp::kLe, Value(int64_t{2})}});
  auto r = Evaluate(*Intersect(left, right), db);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);  // (1, wine), (2, wine)
}

TEST(Engine, ProductSchemaRenamesClashes) {
  Database db = SampleDb();
  auto r = Evaluate(*Product(Scan("trans_item"), Scan("trans_item")), db);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->schema().size(), 4u);
  EXPECT_TRUE(r->schema().Has("r_tid"));
  EXPECT_TRUE(r->schema().Has("r_item"));
  EXPECT_EQ(r->size(), 36u);
}

TEST(Engine, JoinOnItem) {
  // Self-join on item: pairs of transactions sharing an item.
  Database db = SampleDb();
  auto r = Evaluate(
      *Join(Scan("trans_item"), Scan("trans_item"), {{"item", "item"}}), db);
  ASSERT_TRUE(r.ok());
  // wine appears in tids {1,2,3} -> 9 pairs; others unique -> 1 pair each.
  EXPECT_EQ(r->size(), 9u + 3u);
  EXPECT_TRUE(r->schema().Has("r_tid"));
  EXPECT_FALSE(r->schema().Has("r_item"));
}

TEST(Engine, JoinWithoutKeysFails) {
  Database db = SampleDb();
  EXPECT_FALSE(
      Evaluate(*Join(Scan("trans_item"), Scan("trans_item"), {}), db).ok());
}

TEST(Engine, CountPredicateKeepsQualifyingGroups) {
  Database db = SampleDb();
  // Transactions with >= 2 items: T1 (3 items), T2 (2 items).
  auto r =
      Evaluate(*CountPredicate(Scan("trans_item"), "tid", CmpOp::kGe, 2), db);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
  // Strictly more than 2 items: only T1.
  auto r2 =
      Evaluate(*CountPredicate(Scan("trans_item"), "tid", CmpOp::kGt, 2), db);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->size(), 1u);
  // Exactly 1 item: T3.
  auto r3 =
      Evaluate(*CountPredicate(Scan("trans_item"), "tid", CmpOp::kEq, 1), db);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->size(), 1u);
}

TEST(Engine, CountStarAggregates) {
  Database db = SampleDb();
  auto v = EvaluateAggregate(*CountStar(Scan("trans_item")), db);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(*v, 6.0);
}

TEST(Engine, AggregateRootRequired) {
  Database db = SampleDb();
  EXPECT_FALSE(EvaluateAggregate(*Scan("trans_item"), db).ok());
  EXPECT_FALSE(Evaluate(*CountStar(Scan("trans_item")), db).ok());
}

TEST(Engine, SumOverIntColumn) {
  Database db = SampleDb();
  auto v = EvaluateAggregate(*Sum(Scan("trans_item"), "tid"), db);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(*v, 1 + 1 + 1 + 2 + 2 + 3);
}

TEST(Engine, SumOverStringColumnFails) {
  Database db = SampleDb();
  EXPECT_FALSE(EvaluateAggregate(*Sum(Scan("trans_item"), "item"), db).ok());
}

TEST(Engine, NestedQueryTree) {
  // Count transactions with >= 2 wine-or-later items... build:
  // CountStar(CountPredicate(Select(item >= "b"), tid >= 1)).
  Database db = SampleDb();
  auto q = CountStar(CountPredicate(
      Select(Scan("trans_item"),
             {{"item", CmpOp::kGe, Value(std::string("s"))}}),
      "tid", CmpOp::kGe, 1));
  auto v = EvaluateAggregate(*q, db);
  ASSERT_TRUE(v.ok());
  // Items >= "s": shampoo (T1), wine (T1, T2, T3) -> groups {1, 2, 3}.
  EXPECT_DOUBLE_EQ(*v, 3.0);
}

TEST(QueryNode, ToStringRendersTree) {
  auto q = CountStar(Select(Scan("r"), {{"a", CmpOp::kEq, Value(int64_t{1})}}));
  const std::string s = q->ToString();
  EXPECT_NE(s.find("Count(*)"), std::string::npos);
  EXPECT_NE(s.find("Select(a = 1)"), std::string::npos);
  EXPECT_NE(s.find("Scan(r)"), std::string::npos);
}

}  // namespace
}  // namespace licm::rel
