// Tests of the versioned mutation layer (licm/mutable_instance.h):
// version monotonicity, dirty-set locality per mutation kind, atomic
// validation (failed mutations commit nothing), MVCC snapshot isolation,
// and cross-version reuse of the instance-owned component cache.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "licm/evaluator.h"
#include "licm/mutable_instance.h"
#include "relational/query.h"
#include "relational/value.h"

namespace licm {
namespace {

LinearConstraint Card(const std::vector<BVar>& vars, ConstraintOp op,
                      int64_t rhs) {
  LinearConstraint c;
  for (BVar v : vars) c.terms.push_back({v, 1});
  c.op = op;
  c.rhs = rhs;
  return c;
}

// One certain tuple plus four maybe-tuples over two independent
// components: c0 says b0 + b1 >= 1, c1 says b2 + b3 <= 1. The dirty-set
// expectations below all derive from this shape.
LicmDatabase MakeTwoComponentDb() {
  LicmDatabase db;
  rel::Schema schema({{"id", rel::ValueType::kInt},
                      {"item", rel::ValueType::kString}});
  LicmRelation r(schema);
  r.AppendUnchecked({int64_t{1}, std::string("a")}, Ext::Certain());
  for (int i = 0; i < 4; ++i) {
    const BVar v = db.pool().New();
    r.AppendUnchecked({int64_t{2 + i}, std::string(1, char('b' + i))},
                      Ext::Maybe(v));
  }
  EXPECT_TRUE(db.AddRelation("t", std::move(r)).ok());
  db.constraints().Add(Card({0, 1}, ConstraintOp::kGe, 1));
  db.constraints().Add(Card({2, 3}, ConstraintOp::kLe, 1));
  return db;
}

rel::Tuple Row(int64_t id, const std::string& item) {
  return rel::Tuple{id, item};
}

size_t RelationSize(const MutableInstance& inst) {
  auto rel = inst.snapshot()->db.GetRelation("t");
  EXPECT_TRUE(rel.ok());
  return (*rel)->size();
}

TEST(MutableInstance, FirstSnapshotIsVersionOne) {
  MutableInstance inst(MakeTwoComponentDb());
  EXPECT_EQ(1u, inst.version());
  EXPECT_EQ(1u, inst.snapshot()->version);
  EXPECT_EQ(5u, RelationSize(inst));
}

TEST(MutableInstance, MutationsBumpVersionsMonotonically) {
  MutableInstance inst(MakeTwoComponentDb());
  auto a = inst.AppendTuples("t", {{Row(9, "z"), false, std::nullopt}});
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(2u, a->version);
  auto e = inst.EditConstraintRhs(1, ConstraintOp::kLe, 2);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(3u, e->version);
  auto c = inst.AddConstraint(Card({0}, ConstraintOp::kLe, 1));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(4u, c->version);
  MutationResult r = inst.Replace(MakeTwoComponentDb());
  EXPECT_EQ(5u, r.version);
  EXPECT_EQ(5u, inst.version());
}

TEST(MutableInstance, CertainAppendDirtiesNothing) {
  MutableInstance inst(MakeTwoComponentDb());
  auto r = inst.AppendTuples("t", {{Row(9, "z"), false, std::nullopt}});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(1u, r->appended);
  EXPECT_TRUE(r->new_vars.empty());
  EXPECT_EQ(0u, r->dirty_vars);
  EXPECT_EQ(0u, r->dirty_components);
  EXPECT_EQ(2u, r->total_components);
  EXPECT_EQ(MutationResult::kNoConstraint, r->constraint_index);
  EXPECT_EQ(6u, RelationSize(inst));
}

TEST(MutableInstance, FreshMaybeAppendIsANewSingleton) {
  MutableInstance inst(MakeTwoComponentDb());
  auto before = inst.snapshot();
  auto r = inst.AppendTuples("t", {{Row(9, "z"), true, std::nullopt}});
  ASSERT_TRUE(r.ok());
  // The fresh variable is dirty (never solved) but is not a component of
  // the pre-mutation instance, so it counts beyond total_components.
  ASSERT_EQ(1u, r->new_vars.size());
  EXPECT_EQ(4u, r->new_vars[0]);
  EXPECT_EQ(1u, r->dirty_vars);
  EXPECT_EQ(1u, r->dirty_components);
  EXPECT_EQ(2u, r->total_components);
  EXPECT_EQ(5u, inst.snapshot()->db.pool().size());
  EXPECT_EQ(4u, before->db.pool().size());  // MVCC: old snapshot untouched
}

TEST(MutableInstance, ReuseVarAppendDirtiesItsComponent) {
  MutableInstance inst(MakeTwoComponentDb());
  auto r = inst.AppendTuples("t", {{Row(9, "z"), true, BVar{0}}});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->new_vars.empty());  // shared, not allocated
  EXPECT_EQ(2u, r->dirty_vars);      // b0's whole component {b0, b1}
  EXPECT_EQ(1u, r->dirty_components);
  EXPECT_EQ(4u, inst.snapshot()->db.pool().size());
}

TEST(MutableInstance, AppendValidatesTheWholeBatchBeforeCommitting) {
  MutableInstance inst(MakeTwoComponentDb());
  // Second row has the wrong arity: nothing of the batch may land.
  auto bad = inst.AppendTuples(
      "t", {{Row(9, "z"), false, std::nullopt}, {rel::Tuple{int64_t{7}},
                                                 false, std::nullopt}});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(1u, inst.version());
  EXPECT_EQ(5u, RelationSize(inst));

  auto unknown = inst.AppendTuples("t", {{Row(9, "z"), true, BVar{99}}});
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, unknown.status().code());
  EXPECT_NE(std::string::npos, unknown.status().message().find("b99"));
  EXPECT_EQ(1u, inst.version());

  auto norel = inst.AppendTuples("nope", {{Row(9, "z"), false, std::nullopt}});
  ASSERT_FALSE(norel.ok());
  EXPECT_EQ(1u, inst.version());
}

TEST(MutableInstance, RetractRemovesTheFirstMatchOnly) {
  MutableInstance inst(MakeTwoComponentDb());
  ASSERT_TRUE(inst.AppendTuples("t", {{Row(1, "a"), false, std::nullopt}})
                  .ok());
  ASSERT_EQ(6u, RelationSize(inst));
  auto r = inst.RetractTuples("t", {Row(1, "a")});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(1u, r->retracted);
  EXPECT_EQ(5u, RelationSize(inst));
  // The duplicate survives: exactly one (1, "a") left.
  auto rel = inst.snapshot()->db.GetRelation("t");
  ASSERT_TRUE(rel.ok());
  size_t matches = 0;
  for (size_t i = 0; i < (*rel)->size(); ++i) {
    if ((*rel)->tuple(i) == Row(1, "a")) ++matches;
  }
  EXPECT_EQ(1u, matches);
}

TEST(MutableInstance, RetractMissFailsWithoutCommitting) {
  MutableInstance inst(MakeTwoComponentDb());
  auto r = inst.RetractTuples("t", {Row(2, "b"), Row(99, "nope")});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(StatusCode::kNotFound, r.status().code());
  EXPECT_EQ(1u, inst.version());
  EXPECT_EQ(5u, RelationSize(inst));  // the matching (2, "b") stayed too
}

TEST(MutableInstance, RetractDirtiesOnlyItsComponent) {
  MutableInstance inst(MakeTwoComponentDb());
  // (4, "d") carries b2; its component is {b2, b3}.
  auto r = inst.RetractTuples("t", {Row(4, "d")});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(1u, r->retracted);
  EXPECT_EQ(2u, r->dirty_vars);
  EXPECT_EQ(1u, r->dirty_components);
  EXPECT_EQ(2u, r->total_components);
  // Variable ids are never reused: the pool keeps b2 allocated.
  EXPECT_EQ(4u, inst.snapshot()->db.pool().size());
}

TEST(MutableInstance, EditRhsDirtiesTheEditedComponentAndKeepsIndices) {
  MutableInstance inst(MakeTwoComponentDb());
  auto r = inst.EditConstraintRhs(1, ConstraintOp::kLe, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(1u, r->constraint_index);
  EXPECT_EQ(2u, r->dirty_vars);  // component {b2, b3} only
  EXPECT_EQ(1u, r->dirty_components);
  const auto& edited =
      inst.snapshot()->db.constraints().constraints()[1];
  EXPECT_EQ(2, edited.rhs);
  EXPECT_EQ(ConstraintOp::kLe, edited.op);
  EXPECT_EQ(Card({2, 3}, ConstraintOp::kLe, 2).terms, edited.terms);

  auto oob = inst.EditConstraintRhs(99, ConstraintOp::kLe, 1);
  ASSERT_FALSE(oob.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, oob.status().code());
  EXPECT_EQ(2u, inst.version());
}

TEST(MutableInstance, EditDirtiesOldAndNewComponents) {
  MutableInstance inst(MakeTwoComponentDb());
  // Rewire c0 from {b0, b1} to {b0, b2}: the old edge's component and the
  // new terms' component are both dirty.
  auto r = inst.EditConstraint(0, Card({0, 2}, ConstraintOp::kLe, 1));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(0u, r->constraint_index);
  EXPECT_EQ(4u, r->dirty_vars);
  EXPECT_EQ(2u, r->dirty_components);
  // Connectivity was rebuilt: {b0, b2, b3} merged, b1 is a singleton — so
  // the next mutation still sees two components.
  auto follow = inst.AppendTuples("t", {{Row(9, "z"), false, std::nullopt}});
  ASSERT_TRUE(follow.ok());
  EXPECT_EQ(2u, follow->total_components);
}

TEST(MutableInstance, BridgingConstraintDirtiesBothComponents) {
  MutableInstance inst(MakeTwoComponentDb());
  auto r = inst.AddConstraint(Card({1, 2}, ConstraintOp::kLe, 1));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(2u, r->constraint_index);  // appended after c0, c1
  EXPECT_EQ(4u, r->dirty_vars);
  EXPECT_EQ(2u, r->dirty_components);
  EXPECT_EQ(2u, r->total_components);
  // The bridge merged everything into one component.
  auto follow = inst.AddConstraint(Card({0}, ConstraintOp::kLe, 1));
  ASSERT_TRUE(follow.ok());
  EXPECT_EQ(1u, follow->total_components);

  auto unknown = inst.AddConstraint(Card({42}, ConstraintOp::kLe, 1));
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, unknown.status().code());
}

TEST(MutableInstance, ReplaceDirtiesEverything) {
  MutableInstance inst(MakeTwoComponentDb());
  MutationResult r = inst.Replace(MakeTwoComponentDb());
  EXPECT_EQ(2u, r.version);
  EXPECT_EQ(2u, r.total_components);
  EXPECT_EQ(r.total_components, r.dirty_components);
  EXPECT_EQ(4u, r.dirty_vars);
}

TEST(MutableInstance, SnapshotsAreImmutableUnderMutation) {
  MutableInstance inst(MakeTwoComponentDb());
  const rel::QueryNodePtr query = rel::CountStar(rel::Scan("t"));
  auto baseline = AnswerAggregate(*query, inst.snapshot()->db, {});
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  std::shared_ptr<const MutableInstance::Snapshot> old = inst.snapshot();
  ASSERT_TRUE(
      inst.AppendTuples("t", {{Row(9, "z"), false, std::nullopt}}).ok());
  ASSERT_TRUE(inst.EditConstraintRhs(0, ConstraintOp::kGe, 2).ok());

  // The pre-mutation snapshot still answers exactly as before.
  EXPECT_EQ(1u, old->version);
  auto rel = old->db.GetRelation("t");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(5u, (*rel)->size());
  EXPECT_EQ(1, old->db.constraints().constraints()[0].rhs);
  auto replay = AnswerAggregate(*query, old->db, {});
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(baseline->bounds.min.value, replay->bounds.min.value);
  EXPECT_EQ(baseline->bounds.max.value, replay->bounds.max.value);
}

TEST(MutableInstance, CrossVersionCacheServesUntouchedComponents) {
  MutableInstance inst(MakeTwoComponentDb());
  const rel::QueryNodePtr query = rel::CountStar(rel::Scan("t"));

  // COUNT(*) over 1 certain + 4 maybe tuples, b0+b1 >= 1, b2+b3 <= 1.
  auto cold = inst.Answer(*query);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(2.0, cold->bounds.min.value);
  EXPECT_EQ(4.0, cold->bounds.max.value);
  const auto primed = inst.cache()->Snapshot();
  EXPECT_GT(primed.inserts, 0u);
  EXPECT_EQ(0u, primed.cross_epoch_hits);

  // Touch only component {b2, b3}: flip c1 to b2 + b3 >= 1.
  auto edit = inst.EditConstraintRhs(1, ConstraintOp::kGe, 1);
  ASSERT_TRUE(edit.ok());
  EXPECT_EQ(1u, edit->dirty_components);

  auto warm = inst.Answer(*query);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(3.0, warm->bounds.min.value);
  EXPECT_EQ(5.0, warm->bounds.max.value);
  const auto after = inst.cache()->Snapshot();
  // The untouched component {b0, b1} re-canonicalized to its pre-commit
  // fingerprints and was served across the version bump; nothing was
  // evicted to make that happen.
  EXPECT_GT(after.cross_epoch_hits, 0u);
  EXPECT_EQ(0u, after.evictions);

  // And the warm answer is bit-identical to a from-scratch solve.
  auto scratch = AnswerAggregate(*query, inst.snapshot()->db, {});
  ASSERT_TRUE(scratch.ok());
  EXPECT_EQ(scratch->bounds.min.value, warm->bounds.min.value);
  EXPECT_EQ(scratch->bounds.max.value, warm->bounds.max.value);
  EXPECT_EQ(scratch->bounds.min.exact, warm->bounds.min.exact);
  EXPECT_EQ(scratch->bounds.max.exact, warm->bounds.max.exact);
}

}  // namespace
}  // namespace licm
