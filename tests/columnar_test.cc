// Columnar engine tests: unit tests for the batch primitives (arena,
// dictionary, bitmaps, grouping) and randomized differential tests pinning
// the columnar engines to their row-at-a-time references — bit-identical
// relations (rows AND order) for the deterministic engine, bit-identical
// lineage (variables, constraints, bounds) for the LICM pipeline.
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "licm/columnar_ops.h"
#include "licm/evaluator.h"
#include "licm/ops.h"
#include "relational/arena.h"
#include "relational/batch.h"
#include "relational/column.h"
#include "relational/engine.h"
#include "testing/generator.h"

namespace licm {
namespace {

using rel::Column;
using rel::Schema;
using rel::Tuple;
using rel::Value;
using rel::ValueType;

TEST(SchemaIndexOf, MapLookupMatchesPosition) {
  const Schema s({{"tid", ValueType::kInt},
                  {"item", ValueType::kString},
                  {"price", ValueType::kDouble}});
  ASSERT_TRUE(s.IndexOf("tid").ok());
  EXPECT_EQ(*s.IndexOf("tid"), 0u);
  EXPECT_EQ(*s.IndexOf("item"), 1u);
  EXPECT_EQ(*s.IndexOf("price"), 2u);
  EXPECT_TRUE(s.Has("price"));
  EXPECT_FALSE(s.Has("nope"));
  EXPECT_EQ(s.IndexOf("nope").status().code(), StatusCode::kNotFound);
}

TEST(SchemaIndexOf, DuplicateNamesResolveToFirst) {
  // Product/join renaming collisions can produce duplicate names; the
  // memoized lookup must keep the old linear scan's first-match answer.
  const Schema s({{"a", ValueType::kInt},
                  {"b", ValueType::kInt},
                  {"a", ValueType::kDouble}});
  EXPECT_EQ(*s.IndexOf("a"), 0u);
  EXPECT_EQ(*s.IndexOf("b"), 1u);
}

TEST(Arena, AlignsAndPreservesAcrossGrowth) {
  rel::Arena arena;
  std::vector<int64_t*> ptrs;
  for (int i = 0; i < 100; ++i) {
    int64_t* p = arena.AllocArray<int64_t>(1000);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignof(int64_t), 0u);
    p[0] = i;
    p[999] = -i;
    ptrs.push_back(p);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ptrs[i][0], i);
    EXPECT_EQ(ptrs[i][999], -i);
  }
  EXPECT_GE(arena.bytes_allocated(), 100u * 1000u * sizeof(int64_t));
}

TEST(StringDictionary, InternDedupsAndRoundTrips) {
  rel::StringDictionary dict;
  const int64_t a = dict.Intern("apple");
  const int64_t b = dict.Intern("banana");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern("apple"), a);
  EXPECT_EQ(dict.str(a), "apple");
  EXPECT_EQ(dict.str(b), "banana");
  EXPECT_EQ(dict.Find("banana"), b);
  EXPECT_EQ(dict.Find("cherry"), -1);
  EXPECT_EQ(dict.size(), 2u);
}

TEST(Bitmap, CountSetAndIntersect) {
  rel::Arena arena;
  const size_t rows = 130;  // two full words + a 2-bit tail
  uint64_t* a = rel::AllocBitmap(rows, &arena);
  EXPECT_EQ(rel::BitmapCount(a, rows), 0u);
  for (size_t i = 0; i < rows; i += 3) rel::BitmapSet(a, i);
  EXPECT_EQ(rel::BitmapCount(a, rows), (rows + 2) / 3);
  EXPECT_TRUE(rel::BitmapTest(a, 129));
  EXPECT_FALSE(rel::BitmapTest(a, 128));

  uint64_t* b = rel::AllocBitmap(rows, &arena);
  for (size_t i = 0; i < rows; i += 2) rel::BitmapSet(b, i);
  rel::BitmapAnd(a, b, rows);  // multiples of 6
  EXPECT_EQ(rel::BitmapCount(a, rows), rows / 6 + 1);
  for (size_t i = 0; i < rows; ++i) {
    EXPECT_EQ(rel::BitmapTest(a, i), i % 6 == 0) << i;
  }
}

TEST(GroupBy, FirstSeenOrderAndContiguousAscendingRuns) {
  const Schema schema({{"k", ValueType::kInt}});
  std::vector<Tuple> tuples;
  const std::vector<int64_t> keys = {7, 3, 7, 9, 3, 7};
  for (int64_t k : keys) tuples.push_back({Value(k)});
  const rel::ColumnTable table =
      rel::ColumnTable::FromTuples(schema, tuples, nullptr);
  rel::Arena arena;
  const rel::BatchView view = rel::TableView(table);
  const rel::Grouping g = rel::GroupBy(view, {0}, &arena);
  ASSERT_EQ(g.num_groups, 3u);
  // Dense ids in first-seen order: 7 -> 0, 3 -> 1, 9 -> 2.
  EXPECT_EQ(g.rep_row[0], 0u);
  EXPECT_EQ(g.rep_row[1], 1u);
  EXPECT_EQ(g.rep_row[2], 3u);
  const std::vector<std::vector<uint32_t>> want = {{0, 2, 5}, {1, 4}, {3}};
  for (uint32_t gid = 0; gid < 3; ++gid) {
    std::vector<uint32_t> run(g.run_rows + g.run_begin[gid],
                              g.run_rows + g.run_begin[gid + 1]);
    EXPECT_EQ(run, want[gid]) << "group " << gid;
  }
}

TEST(GroupBy, DoubleKeysMergeSignedZeroNeverNaN) {
  const Schema schema({{"x", ValueType::kDouble}});
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<Tuple> tuples = {{Value(0.0)}, {Value(-0.0)}, {Value(nan)},
                               {Value(nan)}, {Value(1.5)}};
  const rel::ColumnTable table =
      rel::ColumnTable::FromTuples(schema, tuples, nullptr);
  rel::Arena arena;
  const rel::Grouping g = rel::GroupBy(rel::TableView(table), {0}, &arena);
  // 0.0 == -0.0 merges; each NaN row is its own group (NaN != NaN), the
  // same equivalence the row engine's Value == gives.
  EXPECT_EQ(g.num_groups, 4u);
}

// ---------------------------------------------------------------------------
// Randomized differential: deterministic relational engine.

// Random database with one TRANSITEM-style relation (int, string, int) and
// one small (string, double) side relation for join/product coverage.
rel::Database RandomDatabase(Rng* rng) {
  rel::Database db;
  const Schema trans({{"tid", ValueType::kInt},
                      {"item", ValueType::kString},
                      {"val", ValueType::kInt}});
  rel::Relation t(trans);
  const int rows = static_cast<int>(rng->UniformInt(0, 30));
  for (int i = 0; i < rows; ++i) {
    t.AppendUnchecked({Value(rng->UniformInt(1, 5)),
                       Value("i" + std::to_string(rng->UniformInt(0, 4))),
                       Value(rng->UniformInt(0, 9))});
  }
  LICM_CHECK_OK(db.Add("t", std::move(t)));

  const Schema items({{"item", ValueType::kString},
                      {"price", ValueType::kDouble}});
  rel::Relation s(items);
  const int srows = static_cast<int>(rng->UniformInt(0, 8));
  for (int i = 0; i < srows; ++i) {
    s.AppendUnchecked({Value("i" + std::to_string(rng->UniformInt(0, 4))),
                       Value(rng->UniformInt(0, 40) * 0.25)});
  }
  LICM_CHECK_OK(db.Add("s", std::move(s)));
  return db;
}

rel::QueryNodePtr RandomTree(Rng* rng, int depth);

rel::QueryNodePtr RandomLeaf(Rng* rng) {
  return rel::Scan(rng->Bernoulli(0.8) ? "t" : "s");
}

rel::QueryNodePtr RandomTree(Rng* rng, int depth) {
  if (depth <= 0) return RandomLeaf(rng);
  switch (rng->Uniform(6)) {
    case 0: {
      const std::vector<rel::CmpOp> ops = {rel::CmpOp::kEq, rel::CmpOp::kNe,
                                           rel::CmpOp::kLt, rel::CmpOp::kLe,
                                           rel::CmpOp::kGt, rel::CmpOp::kGe};
      const rel::CmpOp op = ops[rng->Uniform(ops.size())];
      if (rng->Bernoulli(0.5)) {
        return rel::Select(rel::Scan("t"),
                           {{"tid", op, Value(rng->UniformInt(1, 5))}});
      }
      return rel::Select(
          rel::Scan("t"),
          {{"item", op, Value("i" + std::to_string(rng->UniformInt(0, 4)))}});
    }
    case 1:
      return rel::Project(RandomTree(rng, depth - 1) /* over t only */,
                          {"tid"});
    case 2:
      return rel::Intersect(rel::Scan("t"), RandomTree(rng, depth - 1));
    case 3:
      return rel::Product(RandomTree(rng, depth - 1), rel::Scan("s"));
    case 4:
      return rel::Join(rel::Scan("t"), rel::Scan("s"), {{"item", "item"}});
    default:
      return rel::CountPredicate(rel::Scan("t"), "tid",
                                 rng->Bernoulli(0.5) ? rel::CmpOp::kGe
                                                     : rel::CmpOp::kLe,
                                 rng->UniformInt(0, 3));
  }
}

// Trees from RandomTree can be structurally invalid (projecting a column a
// product renamed, intersecting mismatched schemas); both engines must
// then fail identically.
TEST(ColumnarRelationalDiff, BitIdenticalRelationsOnRandomQueries) {
  const uint64_t base_seed = FuzzSeedFromEnv(0xC01D0DEULL);
  int compared = 0;
  for (int i = 0; i < 400; ++i) {
    Rng rng(base_seed + static_cast<uint64_t>(i));
    const rel::Database db = RandomDatabase(&rng);
    // Project only over trees rooted at t-scans; keep trees simple enough
    // that most are valid while exercising every operator.
    const rel::QueryNodePtr q = RandomTree(&rng, 2);
    const auto columnar = rel::Evaluate(*q, db, rel::EvalEngine::kColumnar);
    const auto row = rel::Evaluate(*q, db, rel::EvalEngine::kRow);
    ASSERT_EQ(columnar.ok(), row.ok())
        << "seed " << base_seed + i << ": columnar="
        << (columnar.ok() ? "ok" : columnar.status().ToString()) << " row="
        << (row.ok() ? "ok" : row.status().ToString()) << "\n"
        << q->ToString();
    if (!columnar.ok()) {
      EXPECT_EQ(columnar.status().ToString(), row.status().ToString());
      continue;
    }
    ++compared;
    ASSERT_TRUE(columnar->schema() == row->schema())
        << "seed " << base_seed + i << "\n" << q->ToString();
    ASSERT_EQ(columnar->size(), row->size())
        << "seed " << base_seed + i << "\n" << q->ToString();
    // Bit-identical: same rows in the same order, not just set-equal.
    for (size_t r = 0; r < row->size(); ++r) {
      ASSERT_EQ(columnar->rows()[r], row->rows()[r])
          << "seed " << base_seed + i << " row " << r << "\n"
          << q->ToString();
    }
  }
  // The generator must not degenerate into all-invalid trees.
  EXPECT_GT(compared, 200);
}

TEST(ColumnarRelationalDiff, AggregatesMatchRowEngine) {
  const uint64_t base_seed = FuzzSeedFromEnv(0xA66ULL);
  for (int i = 0; i < 200; ++i) {
    Rng rng(base_seed + static_cast<uint64_t>(i));
    const rel::Database db = RandomDatabase(&rng);
    rel::QueryNodePtr body = RandomTree(&rng, 2);
    rel::QueryNodePtr q;
    switch (rng.Uniform(4)) {
      case 0: q = rel::CountStar(body); break;
      case 1: q = rel::Sum(rel::Scan("t"), "val"); break;
      case 2: q = rel::Min(rel::Scan("s"), "price"); break;
      default: q = rel::Max(rel::Scan("t"), "val"); break;
    }
    const auto columnar =
        rel::EvaluateAggregate(*q, db, rel::EvalEngine::kColumnar);
    const auto row = rel::EvaluateAggregate(*q, db, rel::EvalEngine::kRow);
    ASSERT_EQ(columnar.ok(), row.ok()) << "seed " << base_seed + i;
    if (!columnar.ok()) {
      EXPECT_EQ(columnar.status().ToString(), row.status().ToString());
      continue;
    }
    // Float sums accumulate in the same order, so exact equality holds.
    EXPECT_EQ(*columnar, *row) << "seed " << base_seed + i;
  }
}

// ---------------------------------------------------------------------------
// Randomized differential: LICM pipeline (lineage structure and bounds).

TEST(ColumnarLicmDiff, IdenticalLineageAndRelations) {
  const uint64_t base_seed = FuzzSeedFromEnv(0x11C3ULL);
  for (int i = 0; i < 150; ++i) {
    const testing::FuzzCase c =
        testing::GenerateCase(base_seed + static_cast<uint64_t>(i));

    LicmDatabase row_db = c.db;
    auto row_rel = EvaluateLicm(*c.query->left, &row_db);

    LicmDatabase col_db = c.db;
    ColumnarLicmContext ctx(OpContext{&col_db.pool(), &col_db.constraints()});
    auto batch = EvaluateLicmBatch(*c.query->left, &col_db, &ctx);

    ASSERT_EQ(row_rel.ok(), batch.ok())
        << "seed " << base_seed + i << ": row="
        << (row_rel.ok() ? "ok" : row_rel.status().ToString()) << " columnar="
        << (batch.ok() ? "ok" : batch.status().ToString());
    if (!row_rel.ok()) {
      EXPECT_EQ(row_rel.status().ToString(), batch.status().ToString());
      continue;
    }

    // Same derived variables and same constraints, in the same order.
    EXPECT_EQ(row_db.pool().size(), col_db.pool().size())
        << "seed " << base_seed + i;
    ASSERT_EQ(row_db.constraints().size(), col_db.constraints().size())
        << "seed " << base_seed + i;
    for (size_t k = 0; k < row_db.constraints().size(); ++k) {
      EXPECT_EQ(row_db.constraints().constraints()[k],
                col_db.constraints().constraints()[k])
          << "seed " << base_seed + i << " constraint " << k;
    }

    // Same result relation: rows, order, and Ext attributes.
    const LicmRelation got = BatchToLicmRelation(*batch, &ctx);
    ASSERT_TRUE(got.schema() == row_rel->schema()) << "seed " << base_seed + i;
    ASSERT_EQ(got.size(), row_rel->size()) << "seed " << base_seed + i;
    for (size_t r = 0; r < got.size(); ++r) {
      EXPECT_EQ(got.tuple(r), row_rel->tuple(r))
          << "seed " << base_seed + i << " row " << r;
      EXPECT_EQ(got.ext(r), row_rel->ext(r))
          << "seed " << base_seed + i << " row " << r << ": "
          << got.ext(r).ToString() << " vs " << row_rel->ext(r).ToString();
    }
  }
}

TEST(ColumnarLicmDiff, BitIdenticalBounds) {
  const uint64_t base_seed = FuzzSeedFromEnv(0xB0B0ULL);
  for (int i = 0; i < 60; ++i) {
    const testing::FuzzCase c =
        testing::GenerateCase(base_seed + static_cast<uint64_t>(i));
    AnswerOptions row_opt;
    row_opt.engine = rel::EvalEngine::kRow;
    row_opt.bounds.mip.num_threads = 1;
    AnswerOptions col_opt;
    col_opt.engine = rel::EvalEngine::kColumnar;
    col_opt.bounds.mip.num_threads = 1;

    const auto row = AnswerAggregate(*c.query, c.db, row_opt);
    const auto col = AnswerAggregate(*c.query, c.db, col_opt);
    ASSERT_EQ(row.ok(), col.ok()) << "seed " << base_seed + i;
    if (!row.ok()) {
      EXPECT_EQ(row.status().code(), col.status().code())
          << "seed " << base_seed + i;
      continue;
    }
    EXPECT_EQ(row->bounds.min.value, col->bounds.min.value)
        << "seed " << base_seed + i;
    EXPECT_EQ(row->bounds.max.value, col->bounds.max.value)
        << "seed " << base_seed + i;
    EXPECT_EQ(row->bounds.min.exact, col->bounds.min.exact)
        << "seed " << base_seed + i;
    EXPECT_EQ(row->bounds.max.exact, col->bounds.max.exact)
        << "seed " << base_seed + i;
    EXPECT_EQ(row->vars_at_query, col->vars_at_query)
        << "seed " << base_seed + i;
    EXPECT_EQ(row->constraints_at_query, col->constraints_at_query)
        << "seed " << base_seed + i;
  }
}

}  // namespace
}  // namespace licm
