// Tests for the synthetic BMS-POS-like transaction generator.
#include "data/transactions.h"

#include <gtest/gtest.h>

#include <fstream>
#include <unordered_set>

#include "data/csv.h"

namespace licm::data {
namespace {

GeneratorConfig SmallConfig() {
  GeneratorConfig c;
  c.num_transactions = 2000;
  c.num_items = 300;
  c.seed = 11;
  return c;
}

TEST(Generator, Deterministic) {
  TransactionDataset a = GenerateTransactions(SmallConfig());
  TransactionDataset b = GenerateTransactions(SmallConfig());
  ASSERT_EQ(a.transactions.size(), b.transactions.size());
  for (size_t i = 0; i < a.transactions.size(); ++i) {
    EXPECT_EQ(a.transactions[i].items, b.transactions[i].items);
    EXPECT_EQ(a.transactions[i].location, b.transactions[i].location);
  }
  EXPECT_EQ(a.price, b.price);
}

TEST(Generator, SeedChangesData) {
  GeneratorConfig c = SmallConfig();
  TransactionDataset a = GenerateTransactions(c);
  c.seed = 12;
  TransactionDataset b = GenerateTransactions(c);
  bool differs = false;
  for (size_t i = 0; i < a.transactions.size(); ++i) {
    differs |= a.transactions[i].items != b.transactions[i].items;
  }
  EXPECT_TRUE(differs);
}

TEST(Generator, RespectsConfiguredShape) {
  GeneratorConfig c = SmallConfig();
  TransactionDataset d = GenerateTransactions(c);
  auto s = d.ComputeStats();
  EXPECT_EQ(s.num_transactions, c.num_transactions);
  // Mean size within 15% of the target.
  EXPECT_NEAR(s.avg_size, c.mean_size, c.mean_size * 0.15);
  EXPECT_LE(s.max_size, c.max_size);
  for (const auto& t : d.transactions) {
    EXPECT_GE(t.items.size(), 1u);
    EXPECT_GE(t.location, 0);
    EXPECT_LT(t.location, static_cast<int64_t>(c.num_locations));
    // Items distinct and in range.
    std::unordered_set<ItemId> set(t.items.begin(), t.items.end());
    EXPECT_EQ(set.size(), t.items.size());
    for (ItemId i : t.items) EXPECT_LT(i, c.num_items);
  }
  for (int64_t p : d.price) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, static_cast<int64_t>(c.num_prices));
  }
}

TEST(Generator, ZipfSkewsItemPopularity) {
  TransactionDataset d = GenerateTransactions(SmallConfig());
  std::vector<uint32_t> support(300, 0);
  for (const auto& t : d.transactions) {
    for (ItemId i : t.items) ++support[i];
  }
  // The most popular decile must dominate the least popular decile.
  uint64_t head = 0, tail = 0;
  for (uint32_t i = 0; i < 30; ++i) head += support[i];
  for (uint32_t i = 270; i < 300; ++i) tail += support[i];
  EXPECT_GT(head, tail * 3);
}

TEST(Generator, ToTransItemFlattens) {
  TransactionDataset d = GenerateTransactions(SmallConfig());
  rel::Relation r = d.ToTransItem();
  EXPECT_EQ(r.size(), d.ComputeStats().num_rows);
  EXPECT_EQ(r.schema().size(), 4u);
  // Spot-check the first transaction's first item row.
  const auto& t0 = d.transactions[0];
  const auto& row = r.rows()[0];
  EXPECT_EQ(std::get<int64_t>(row[0]), t0.tid);
  EXPECT_EQ(std::get<int64_t>(row[1]), t0.location);
  EXPECT_EQ(std::get<int64_t>(row[3]),
            d.price[static_cast<ItemId>(std::get<int64_t>(row[2]))]);
}

TEST(Generator, ToTransItemColumnarMatchesRowFlattening) {
  TransactionDataset d = GenerateTransactions(SmallConfig());
  const rel::Relation rows = d.ToTransItem();
  const rel::ColumnTable cols = d.ToTransItemColumnar();
  ASSERT_EQ(cols.num_rows(), rows.size());
  // All-int schema, so no dictionary is needed for the round trip.
  const rel::Relation back = cols.ToRows(nullptr);
  ASSERT_TRUE(back.schema() == rows.schema());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(back.rows()[i], rows.rows()[i]) << "row " << i;
  }
}

TEST(Csv, RoundTripsDataset) {
  GeneratorConfig c = SmallConfig();
  c.num_transactions = 100;
  TransactionDataset d = GenerateTransactions(c);
  const std::string path = ::testing::TempDir() + "/txns.csv";
  ASSERT_TRUE(SaveCsv(d, path).ok());
  auto loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->transactions.size(), d.transactions.size());
  for (size_t i = 0; i < d.transactions.size(); ++i) {
    EXPECT_EQ(loaded->transactions[i].tid, d.transactions[i].tid);
    EXPECT_EQ(loaded->transactions[i].location, d.transactions[i].location);
    EXPECT_EQ(loaded->transactions[i].items, d.transactions[i].items);
  }
  EXPECT_EQ(loaded->price, d.price);
}

TEST(Csv, RejectsMissingAndMalformedFiles) {
  EXPECT_FALSE(LoadCsv("/nonexistent/file.csv").ok());
  const std::string path = ::testing::TempDir() + "/bad.csv";
  {
    std::ofstream f(path);
    f << "wrong,header\n";
    std::ofstream pf(path + ".prices");
    pf << "item,price\n";
  }
  EXPECT_FALSE(LoadCsv(path).ok());
  {
    std::ofstream f(path);
    f << "tid,loc,item\n1,2,not_a_number\n";
  }
  EXPECT_FALSE(LoadCsv(path).ok());
}

TEST(Zipf, CdfIsUniformWhenSZero) {
  ZipfSampler z(10, 0.0);
  Rng rng(3);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[z.Sample(&rng)];
  for (int c : counts) EXPECT_NEAR(c, 1000, 200);
}

}  // namespace
}  // namespace licm::data
