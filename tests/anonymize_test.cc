// Tests for the anonymization substrates: hierarchy, k^m / k-anonymity,
// suppression, and bipartite safe grouping.
#include <gtest/gtest.h>

#include "anonymize/generalize.h"
#include "anonymize/grouping.h"
#include "anonymize/hierarchy.h"
#include "anonymize/suppress.h"

namespace licm::anonymize {
namespace {

data::TransactionDataset SmallDataset(uint32_t txns = 200,
                                      uint32_t items = 64,
                                      uint64_t seed = 5) {
  data::GeneratorConfig c;
  c.num_transactions = txns;
  c.num_items = items;
  c.mean_size = 4.0;
  c.seed = seed;
  return data::GenerateTransactions(c);
}

// ---- Hierarchy ----

TEST(Hierarchy, UniformStructureValid) {
  for (uint32_t leaves : {1u, 2u, 3u, 7u, 8u, 64u, 100u, 1657u}) {
    for (uint32_t fanout : {2u, 3u, 5u}) {
      Hierarchy h = Hierarchy::BuildUniform(leaves, fanout);
      ASSERT_TRUE(h.Validate().ok())
          << "leaves=" << leaves << " fanout=" << fanout << ": "
          << h.Validate().ToString();
      EXPECT_EQ(h.num_leaves(), leaves);
      EXPECT_EQ(h.LeafCount(h.root()), leaves);
      EXPECT_EQ(h.Depth(h.root()), 0u);
    }
  }
}

TEST(Hierarchy, CoversAndRanges) {
  Hierarchy h = Hierarchy::BuildUniform(8, 2);
  // 8 leaves, fanout 2: 8 + 4 + 2 + 1 = 15 nodes.
  EXPECT_EQ(h.num_nodes(), 15u);
  const NodeId p01 = h.Parent(0);
  EXPECT_EQ(h.Parent(1), p01);
  EXPECT_TRUE(h.Covers(p01, 0));
  EXPECT_TRUE(h.Covers(p01, 1));
  EXPECT_FALSE(h.Covers(p01, 2));
  EXPECT_TRUE(h.Covers(h.root(), 7));
  EXPECT_EQ(h.LeafCount(p01), 2u);
}

// ---- k^m-anonymity ----

class KmSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(KmSweep, OutputSatisfiesDefinitionAndRecodingValid) {
  const uint32_t k = GetParam();
  auto d = SmallDataset();
  Hierarchy h = Hierarchy::BuildUniform(d.num_items, 4);
  auto out = KmAnonymize(d, h, {k, 2});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(CheckKmAnonymity(*out, k, 2).ok());
  EXPECT_TRUE(CheckRecodingValid(d, *out, h).ok());
}

INSTANTIATE_TEST_SUITE_P(K, KmSweep, ::testing::Values(2, 4, 6, 8));

TEST(Km, MoreKMeansMoreGeneralization) {
  auto d = SmallDataset();
  Hierarchy h = Hierarchy::BuildUniform(d.num_items, 4);
  auto k2 = KmAnonymize(d, h, {2, 2});
  auto k8 = KmAnonymize(d, h, {8, 2});
  ASSERT_TRUE(k2.ok());
  ASSERT_TRUE(k8.ok());
  EXPECT_GE(k8->ComputeStats(h).expansion, k2->ComputeStats(h).expansion);
}

TEST(Km, M1WeakerThanM2) {
  auto d = SmallDataset();
  Hierarchy h = Hierarchy::BuildUniform(d.num_items, 4);
  auto m1 = KmAnonymize(d, h, {4, 1});
  auto m2 = KmAnonymize(d, h, {4, 2});
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  EXPECT_TRUE(CheckKmAnonymity(*m1, 4, 1).ok());
  EXPECT_LE(m1->ComputeStats(h).expansion, m2->ComputeStats(h).expansion);
}

TEST(Km, RejectsBadConfig) {
  auto d = SmallDataset(10);
  Hierarchy h = Hierarchy::BuildUniform(d.num_items, 4);
  EXPECT_FALSE(KmAnonymize(d, h, {0, 2}).ok());
  EXPECT_FALSE(KmAnonymize(d, h, {2, 3}).ok());
  EXPECT_FALSE(KmAnonymize(d, h, {11, 2}).ok());  // k > #transactions
  Hierarchy tiny = Hierarchy::BuildUniform(2, 2);
  EXPECT_FALSE(KmAnonymize(d, tiny, {2, 2}).ok());
}

// ---- k-anonymity ----

class KAnonSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(KAnonSweep, OutputSatisfiesDefinitionAndRecodingValid) {
  const uint32_t k = GetParam();
  auto d = SmallDataset();
  Hierarchy h = Hierarchy::BuildUniform(d.num_items, 4);
  auto out = KAnonymize(d, h, {k});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(CheckKAnonymity(*out, k).ok())
      << CheckKAnonymity(*out, k).ToString();
  EXPECT_TRUE(CheckRecodingValid(d, *out, h).ok())
      << CheckRecodingValid(d, *out, h).ToString();
}

INSTANTIATE_TEST_SUITE_P(K, KAnonSweep, ::testing::Values(2, 4, 6, 8));

TEST(KAnon, IdenticalTransactionsStayExact) {
  // If >= k transactions are identical, no generalization is needed.
  data::TransactionDataset d;
  d.num_items = 8;
  d.price.assign(8, 1);
  for (int i = 0; i < 4; ++i) {
    d.transactions.push_back({i, 0, {1, 3, 5}});
  }
  Hierarchy h = Hierarchy::BuildUniform(8, 2);
  auto out = KAnonymize(d, h, {4});
  ASSERT_TRUE(out.ok());
  for (const auto& t : out->transactions) {
    EXPECT_EQ(t.nodes, (std::vector<NodeId>{1, 3, 5}));
  }
}

// ---- Suppression ----

TEST(Suppress, RemovesRareItemsGlobally) {
  data::TransactionDataset d;
  d.num_items = 4;
  d.price.assign(4, 1);
  d.transactions.push_back({0, 0, {0, 1}});
  d.transactions.push_back({1, 0, {0, 2}});
  d.transactions.push_back({2, 0, {0, 3}});
  auto out = SuppressRareItems(d, {2});
  ASSERT_TRUE(out.ok());
  // Items 1, 2, 3 have support 1 -> suppressed; item 0 kept.
  EXPECT_EQ(out->suppressed_items,
            (std::vector<data::ItemId>{1, 2, 3}));
  EXPECT_TRUE(CheckSuppression(*out, 2).ok());
  for (const auto& t : out->transactions) {
    EXPECT_EQ(t.items, (std::vector<data::ItemId>{0}));
  }
}

TEST(Suppress, KOneSuppressesNothing) {
  auto d = SmallDataset(50, 32);
  auto out = SuppressRareItems(d, {1});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->suppressed_items.empty());
}

// ---- Bipartite grouping ----

class GroupingSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(GroupingSweep, GroupSizesAndCoverage) {
  const uint32_t k = GetParam();
  auto d = SmallDataset(100, 48, 9);
  auto g = SafeGrouping(d, {k, 2, 3});
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  size_t violations = 0;
  ASSERT_TRUE(CheckGrouping(d, *g, k, 2, &violations).ok());
  EXPECT_EQ(violations, g->safety_violations);
}

INSTANTIATE_TEST_SUITE_P(K, GroupingSweep, ::testing::Values(2, 4, 6, 8));

TEST(Grouping, DisjointDataIsPerfectlySafe) {
  // Transactions with pairwise disjoint items: greedy must find a grouping
  // with zero safety violations.
  data::TransactionDataset d;
  d.num_items = 16;
  d.price.assign(16, 1);
  for (int t = 0; t < 8; ++t) {
    d.transactions.push_back(
        {t, 0, {static_cast<data::ItemId>(2 * t),
                static_cast<data::ItemId>(2 * t + 1)}});
  }
  auto g = SafeGrouping(d, {2, 2, 3});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->safety_violations, 0u);
}

TEST(Grouping, RejectsBadConfig) {
  auto d = SmallDataset(3, 16);
  EXPECT_FALSE(SafeGrouping(d, {0, 2, 3}).ok());
  EXPECT_FALSE(SafeGrouping(d, {4, 2, 3}).ok());  // k > #transactions
}

}  // namespace
}  // namespace licm::anonymize
