// Validates the benchmark harness's paper-query builders: on *certain*
// data (the identity world of a bipartite encoding), the flat-view and
// bipartite-view formulations of each query must return the same answer,
// and both must match a straightforward reference computation.
#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "harness.h"
#include "relational/engine.h"

namespace licm::bench {
namespace {

data::TransactionDataset Dataset() {
  data::GeneratorConfig c;
  c.num_transactions = 400;
  c.num_items = 60;
  c.seed = 23;
  return data::GenerateTransactions(c);
}

// Reference implementations straight off the paper's query definitions.
int64_t RefQ1(const data::TransactionDataset& d, const QueryParams& p) {
  int64_t count = 0;
  for (const auto& t : d.transactions) {
    if (t.location >= p.q1_pa_max_loc) continue;
    for (auto i : t.items) {
      if (d.price[i] < p.q1_pb_max_price) {
        ++count;
        break;
      }
    }
  }
  return count;
}

int64_t RefQ2(const data::TransactionDataset& d, const QueryParams& p) {
  int64_t count = 0;
  for (const auto& t : d.transactions) {
    if (t.location >= p.q2_pa_max_loc) continue;
    int64_t pb = 0, pc = 0;
    for (auto i : t.items) {
      if (d.price[i] < p.q2_pb_max_price) ++pb;
      if (d.price[i] >= p.q2_pc_min_price) ++pc;
    }
    if (pb >= p.q2_x && pc >= p.q2_y) ++count;
  }
  return count;
}

int64_t RefQ3(const data::TransactionDataset& d, const QueryParams& p) {
  std::unordered_map<data::ItemId, int64_t> support;
  for (const auto& t : d.transactions) {
    if (t.location >= p.q3_pb_max_loc) continue;
    for (auto i : t.items) ++support[i];
  }
  std::unordered_set<data::ItemId> popular;
  for (const auto& [i, s] : support) {
    if (s >= p.q3_x) popular.insert(i);
  }
  int64_t count = 0;
  for (const auto& t : d.transactions) {
    if (t.location >= p.q3_pa_max_loc) continue;
    for (auto i : t.items) {
      if (popular.contains(i)) {
        ++count;
        break;
      }
    }
  }
  return count;
}

class PaperQueries : public ::testing::TestWithParam<int> {};

TEST_P(PaperQueries, FlatMatchesReference) {
  const int q = GetParam();
  auto d = Dataset();
  QueryParams p;
  p.q3_x = 3;  // keep Q3 non-degenerate at this scale
  rel::Database db;
  LICM_CHECK_OK(db.Add("trans_item", d.ToTransItem()));
  auto v = rel::EvaluateAggregate(*BuildFlatQuery(q, p), db);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  const int64_t expected = q == 1 ? RefQ1(d, p) : q == 2 ? RefQ2(d, p)
                                                         : RefQ3(d, p);
  EXPECT_DOUBLE_EQ(*v, static_cast<double>(expected));
}

TEST_P(PaperQueries, BipartiteViewMatchesFlatOnIdentityWorld) {
  const int q = GetParam();
  auto d = Dataset();
  QueryParams p;
  p.q3_x = 3;
  auto groups = anonymize::SafeGrouping(d, {2, 2, 3});
  ASSERT_TRUE(groups.ok());
  auto enc = anonymize::EncodeBipartite(*groups, d);
  ASSERT_TRUE(enc.ok());
  rel::Database identity = enc->db.Instantiate(enc->original_world);
  auto bip = rel::EvaluateAggregate(*BuildBipartiteQuery(q, p), identity);
  ASSERT_TRUE(bip.ok()) << bip.status().ToString();

  rel::Database flat;
  LICM_CHECK_OK(flat.Add("trans_item", d.ToTransItem()));
  auto ref = rel::EvaluateAggregate(*BuildFlatQuery(q, p), flat);
  ASSERT_TRUE(ref.ok());
  EXPECT_DOUBLE_EQ(*bip, *ref);
}

INSTANTIATE_TEST_SUITE_P(Q, PaperQueries, ::testing::Values(1, 2, 3));

TEST(Harness, RunCellProducesConsistentBounds) {
  BenchConfig config;
  config.num_transactions = 300;
  config.bipartite_transactions = 20;
  config.num_items = 40;
  config.solver_time_limit = 20.0;
  config.bipartite_time_limit = 10.0;
  QueryParams params;
  for (Scheme s : {Scheme::kKm, Scheme::kKAnon, Scheme::kBipartite}) {
    auto cell = RunCell(s, 1, 2, config, params);
    ASSERT_TRUE(cell.ok()) << SchemeName(s) << ": "
                           << cell.status().ToString();
    EXPECT_LE(cell->l_min, cell->m_min + 1e-9) << SchemeName(s);
    EXPECT_GE(cell->l_max, cell->m_max - 1e-9) << SchemeName(s);
    EXPECT_GE(cell->vars_query, cell->vars_pruned) << SchemeName(s);
    EXPECT_GE(cell->cons_query, cell->cons_pruned) << SchemeName(s);
  }
}

}  // namespace
}  // namespace licm::bench
