// Tests for the probabilistic-priors extension (paper Section VI):
// expected aggregate values under independent priors conditioned on the
// constraint set, exact by enumeration or approximate by rejection
// sampling.
#include "licm/probabilistic.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "licm/evaluator.h"

namespace licm {
namespace {

using rel::CmpOp;
using rel::Value;
using rel::ValueType;

// Figure 2(c): shampoo certain, 3 alcohol possibilities with >= 1 present.
LicmDatabase Figure2c(std::vector<BVar>* vars = nullptr) {
  LicmDatabase db;
  LicmRelation r(rel::Schema(
      {{"tid", ValueType::kInt}, {"item", ValueType::kString}}));
  std::vector<BVar> alcohol;
  for (const char* item : {"beer", "wine", "liquor"}) {
    BVar b = db.pool().New();
    alcohol.push_back(b);
    r.AppendUnchecked({int64_t{1}, std::string(item)}, Ext::Maybe(b));
  }
  r.AppendUnchecked({int64_t{1}, std::string("shampoo")}, Ext::Certain());
  db.constraints().AddCardinality(alcohol, 1, 3);
  LICM_CHECK_OK(db.AddRelation("trans_item", std::move(r)));
  if (vars) *vars = alcohol;
  return db;
}

TEST(Probabilistic, ExactUniformPriorsOnFigure2) {
  LicmDatabase db = Figure2c();
  auto q = rel::CountStar(rel::Scan("trans_item"));
  auto ans = ExpectedAggregate(*q, db, Priors::Uniform(db.pool().size()));
  ASSERT_TRUE(ans.ok()) << ans.status().ToString();
  EXPECT_TRUE(ans->exact);
  // 7 equally likely valid assignments; counts: 3 worlds of 2 alcohol?
  // Sizes: C(3,1)=3 worlds with count 2, C(3,2)=3 with count 3, 1 with 4.
  // E = (3*2 + 3*3 + 4) / 7 = 19/7.
  EXPECT_NEAR(ans->expected, 19.0 / 7.0, 1e-12);
  ASSERT_EQ(ans->distribution.size(), 3u);
  EXPECT_NEAR(ans->distribution[0].second, 3.0 / 7.0, 1e-12);
  EXPECT_NEAR(ans->distribution[2].second, 1.0 / 7.0, 1e-12);
}

TEST(Probabilistic, SkewedPriorsShiftTheMean) {
  LicmDatabase db = Figure2c();
  auto q = rel::CountStar(rel::Scan("trans_item"));
  Priors high;
  high.p.assign(db.pool().size(), 0.95);
  Priors low;
  low.p.assign(db.pool().size(), 0.05);
  auto h = ExpectedAggregate(*q, db, high);
  auto l = ExpectedAggregate(*q, db, low);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(l.ok());
  EXPECT_GT(h->expected, l->expected);
  // Regardless of priors, the conditional mean stays within the
  // possibilistic bounds [2, 4].
  EXPECT_GE(l->expected, 2.0);
  EXPECT_LE(h->expected, 4.0);
}

TEST(Probabilistic, SamplingAgreesWithExact) {
  LicmDatabase db = Figure2c();
  auto q = rel::CountStar(rel::Scan("trans_item"));
  Priors priors = Priors::Uniform(db.pool().size());
  auto exact = ExpectedAggregate(*q, db, priors);
  ASSERT_TRUE(exact.ok());
  ProbabilisticOptions opt;
  opt.exact_var_limit = 0;  // force the sampling path
  opt.num_samples = 4000;
  opt.seed = 99;
  auto mc = ExpectedAggregate(*q, db, priors, opt);
  ASSERT_TRUE(mc.ok());
  EXPECT_FALSE(mc->exact);
  EXPECT_NEAR(mc->expected, exact->expected, 3 * mc->ci_halfwidth + 1e-9);
  EXPECT_GT(mc->acceptance_rate, 0.5);  // 7 of 8 assignments valid
}

TEST(Probabilistic, RejectsBadPriors) {
  LicmDatabase db = Figure2c();
  auto q = rel::CountStar(rel::Scan("trans_item"));
  Priors bad;
  bad.p = {0.5, 1.5, 0.5};
  EXPECT_FALSE(ExpectedAggregate(*q, db, bad).ok());
  EXPECT_FALSE(
      ExpectedAggregate(*rel::Scan("trans_item"), db, Priors{}).ok());
}

TEST(Probabilistic, InfeasibleConstraintsReported) {
  LicmDatabase db;
  LicmRelation r(rel::Schema({{"x", ValueType::kInt}}));
  BVar b = db.pool().New();
  r.AppendUnchecked({int64_t{1}}, Ext::Maybe(b));
  db.constraints().AddFix(b, 0);
  db.constraints().AddFix(b, 1);
  LICM_CHECK_OK(db.AddRelation("r", std::move(r)));
  auto ans = ExpectedAggregate(*rel::CountStar(rel::Scan("r")), db,
                               Priors::Uniform(1));
  ASSERT_FALSE(ans.ok());
  EXPECT_EQ(ans.status().code(), StatusCode::kInfeasible);
}

TEST(Probabilistic, DeterministicPriorZeroExcludesWorlds) {
  std::vector<BVar> vars;
  LicmDatabase db = Figure2c(&vars);
  auto q = rel::CountStar(rel::Scan("trans_item"));
  // Beer certainly absent, wine certainly present, liquor fair coin:
  // count = 3 w.p. 1/2 and 2 w.p. 1/2 -> E = 2.5.
  Priors pr = Priors::Uniform(db.pool().size());
  pr.p[vars[0]] = 0.0;
  pr.p[vars[1]] = 1.0;
  auto ans = ExpectedAggregate(*q, db, pr);
  ASSERT_TRUE(ans.ok());
  EXPECT_NEAR(ans->expected, 2.5, 1e-12);
  EXPECT_NEAR(ans->variance, 0.25, 1e-12);
}

TEST(Probabilistic, MinMaxAggregateOverNonEmptyWorlds) {
  // MAX(price) with mutually exclusive 3 / 9: E = (3 + 9) / 2 = 6 under
  // uniform priors (two valid equally-weighted worlds).
  LicmDatabase db;
  LicmRelation r(rel::Schema(
      {{"tid", ValueType::kInt}, {"price", ValueType::kInt}}));
  BVar b0 = db.pool().New(), b1 = db.pool().New();
  r.AppendUnchecked({int64_t{1}, int64_t{3}}, Ext::Maybe(b0));
  r.AppendUnchecked({int64_t{2}, int64_t{9}}, Ext::Maybe(b1));
  db.constraints().AddMutualExclusion(b0, b1);
  LICM_CHECK_OK(db.AddRelation("r", std::move(r)));
  auto ans = ExpectedAggregate(*rel::Max(rel::Scan("r"), "price"), db,
                               Priors::Uniform(2));
  ASSERT_TRUE(ans.ok());
  EXPECT_NEAR(ans->expected, 6.0, 1e-12);
}

}  // namespace
}  // namespace licm
