// Tests for the bench regression sentinel (tools/bench_diff_core.h):
// metric classification, the pass/warn/fail verdict rules per class, row
// matching by identity key, one-sided column handling, and the verdict
// JSON.
#include "tools/bench_diff_core.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "service/json.h"

namespace licm::tools {
namespace {

// Writes a two-row bench file shaped like BENCH_query.json.
std::string WriteBench(const std::string& path, double q1_solve_ms,
                       int64_t q1_nodes, double q1_max,
                       const std::string& extra = "") {
  std::ofstream out(path);
  out << "[\n"
      << "{\"git_sha\":\"abc\",\"bench\":\"query_path\",\"engine\":\"row\","
         "\"query\":1,\"k\":12,\"num_transactions\":400,"
         "\"min\":0,\"max\":" << q1_max << ",\"min_exact\":true,"
         "\"max_exact\":true,\"solve_ms\":" << q1_solve_ms
      << ",\"nodes\":" << q1_nodes << ",\"rows_per_s\":1000000" << extra
      << "},\n"
      << "{\"git_sha\":\"abc\",\"bench\":\"query_path\","
         "\"engine\":\"columnar\",\"query\":1,\"k\":12,"
         "\"num_transactions\":400,\"min\":0,\"max\":43,"
         "\"min_exact\":true,\"max_exact\":true,\"solve_ms\":40.0,"
         "\"nodes\":100,\"rows_per_s\":5000000}\n"
      << "]\n";
  return path;
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

TEST(BenchDiff, ClassifiesMetricNames) {
  EXPECT_EQ(MetricClass::kIdentity, ClassifyMetric("engine"));
  EXPECT_EQ(MetricClass::kIdentity, ClassifyMetric("num_transactions"));
  EXPECT_EQ(MetricClass::kBound, ClassifyMetric("min"));
  EXPECT_EQ(MetricClass::kBound, ClassifyMetric("max_exact"));
  EXPECT_EQ(MetricClass::kBound, ClassifyMetric("verify_failures"));
  EXPECT_EQ(MetricClass::kCounter, ClassifyMetric("nodes"));
  EXPECT_EQ(MetricClass::kCounter, ClassifyMetric("lp_pivots"));
  EXPECT_EQ(MetricClass::kCounter, ClassifyMetric("m_solver_nodes"));
  EXPECT_EQ(MetricClass::kTime, ClassifyMetric("solve_ms"));
  EXPECT_EQ(MetricClass::kTime, ClassifyMetric("cpu_s"));
  EXPECT_EQ(MetricClass::kTime, ClassifyMetric("max_rss_kb"));
  EXPECT_EQ(MetricClass::kRate, ClassifyMetric("rows_per_s"));
  EXPECT_EQ(MetricClass::kRate, ClassifyMetric("speedup"));
  EXPECT_EQ(MetricClass::kInfo, ClassifyMetric("git_sha"));
  EXPECT_EQ(MetricClass::kInfo, ClassifyMetric("hardware_concurrency"));
}

TEST(BenchDiff, IdenticalFilesPass) {
  const std::string base = WriteBench(TempPath("bd_ident_base.json"),
                                      100.0, 100, 43);
  auto diff = DiffBenchFiles(base, base, DiffOptions{});
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();
  EXPECT_EQ(Verdict::kPass, diff->verdict);
  EXPECT_EQ(2, diff->rows_compared);
  EXPECT_TRUE(diff->rows.empty());
}

TEST(BenchDiff, SlowerTimeWarnsOnly) {
  const std::string base = WriteBench(TempPath("bd_time_base.json"),
                                      100.0, 100, 43);
  const std::string cur = WriteBench(TempPath("bd_time_cur.json"),
                                     220.0, 100, 43);
  auto diff = DiffBenchFiles(cur, base, DiffOptions{});
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(Verdict::kWarn, diff->verdict);
  ASSERT_EQ(1u, diff->rows.size());
  ASSERT_EQ(1u, diff->rows[0].metrics.size());
  EXPECT_EQ("solve_ms", diff->rows[0].metrics[0].name);
  EXPECT_EQ(Verdict::kWarn, diff->rows[0].metrics[0].verdict);
}

TEST(BenchDiff, CounterRegressionFailsUnlessDowngraded) {
  const std::string base = WriteBench(TempPath("bd_ctr_base.json"),
                                      100.0, 100, 43);
  const std::string cur = WriteBench(TempPath("bd_ctr_cur.json"),
                                     100.0, 200, 43);
  auto diff = DiffBenchFiles(cur, base, DiffOptions{});
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(Verdict::kFail, diff->verdict);
  ASSERT_EQ(1u, diff->rows.size());
  EXPECT_EQ("nodes", diff->rows[0].metrics[0].name);

  DiffOptions warn_only;
  warn_only.counters_warn_only = true;
  auto downgraded = DiffBenchFiles(cur, base, warn_only);
  ASSERT_TRUE(downgraded.ok());
  EXPECT_EQ(Verdict::kWarn, downgraded->verdict);
}

TEST(BenchDiff, SmallCounterDeltaIsBelowTheFloor) {
  const std::string base = WriteBench(TempPath("bd_floor_base.json"),
                                      100.0, 4, 43);
  // 4 -> 12 nodes is a 3x ratio but only +8 absolute: noise on a tiny
  // instance, not a regression.
  const std::string cur = WriteBench(TempPath("bd_floor_cur.json"),
                                     100.0, 12, 43);
  auto diff = DiffBenchFiles(cur, base, DiffOptions{});
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(Verdict::kPass, diff->verdict);
}

TEST(BenchDiff, BoundDriftHardFails) {
  const std::string base = WriteBench(TempPath("bd_bound_base.json"),
                                      100.0, 100, 43);
  const std::string cur = WriteBench(TempPath("bd_bound_cur.json"),
                                     100.0, 100, 44);
  auto diff = DiffBenchFiles(cur, base, DiffOptions{});
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(Verdict::kFail, diff->verdict);
  ASSERT_EQ(1u, diff->rows.size());
  EXPECT_EQ("max", diff->rows[0].metrics[0].name);
  // Bounds fail even with counters downgraded: answers are not noise.
  DiffOptions warn_only;
  warn_only.counters_warn_only = true;
  EXPECT_EQ(Verdict::kFail, DiffBenchFiles(cur, base, warn_only)->verdict);
}

TEST(BenchDiff, OneSidedColumnsAndNewRowsDoNotGate) {
  const std::string base = WriteBench(TempPath("bd_side_base.json"),
                                      100.0, 100, 43);
  // Current adds a column the baseline predates (max_rss_kb) and keeps
  // everything else identical: must still pass.
  const std::string cur = WriteBench(TempPath("bd_side_cur.json"),
                                     100.0, 100, 43,
                                     ",\"max_rss_kb\":150000");
  auto diff = DiffBenchFiles(cur, base, DiffOptions{});
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(Verdict::kPass, diff->verdict);
}

TEST(BenchDiff, MissingBaselineRowWarnsAndNewRowIsNoted) {
  // Baseline has both engines; current renames one engine, so one row is
  // new and one baseline row goes unmatched.
  const std::string base = WriteBench(TempPath("bd_rows_base.json"),
                                      100.0, 100, 43);
  const std::string cur_path = TempPath("bd_rows_cur.json");
  {
    std::ofstream out(cur_path);
    out << "[{\"bench\":\"query_path\",\"engine\":\"vectorized\","
           "\"query\":1,\"k\":12,\"num_transactions\":400,\"min\":0,"
           "\"max\":43,\"solve_ms\":40.0,\"nodes\":100},\n"
           "{\"bench\":\"query_path\",\"engine\":\"row\",\"query\":1,"
           "\"k\":12,\"num_transactions\":400,\"min\":0,\"max\":43,"
           "\"min_exact\":true,\"max_exact\":true,\"solve_ms\":100.0,"
           "\"nodes\":100,\"rows_per_s\":1000000}]\n";
  }
  auto diff = DiffBenchFiles(cur_path, base, DiffOptions{});
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(Verdict::kWarn, diff->verdict);  // vanished columnar row
  EXPECT_EQ(1, diff->rows_compared);
  EXPECT_EQ(1, diff->rows_only_in_current);
  EXPECT_EQ(1, diff->rows_only_in_baseline);
}

TEST(BenchDiff, VerdictJsonParsesAndAggregates) {
  const std::string base = WriteBench(TempPath("bd_json_base.json"),
                                      100.0, 100, 43);
  const std::string cur = WriteBench(TempPath("bd_json_cur.json"),
                                     100.0, 200, 43);
  auto diff = DiffBenchFiles(cur, base, DiffOptions{});
  ASSERT_TRUE(diff.ok());
  auto parsed = service::ParseJson(RenderDiffJson({*diff}));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ("fail", parsed->GetString("verdict", "").value());
  const service::JsonValue* files = parsed->Find("files");
  ASSERT_NE(nullptr, files);
  ASSERT_EQ(1u, files->array.size());
  EXPECT_EQ("fail", files->array[0].GetString("verdict", "").value());
  EXPECT_EQ(2, files->array[0].GetInt("rows_compared", 0).value());
}

TEST(BenchDiff, MissingFileIsAnErrorNotAVerdict) {
  auto diff = DiffBenchFiles("/nonexistent/bench.json",
                             "/nonexistent/base.json", DiffOptions{});
  ASSERT_FALSE(diff.ok());
}

}  // namespace
}  // namespace licm::tools
