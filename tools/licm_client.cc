// Load driver for licm_serve (DESIGN.md §10, §14).
//
//   licm_client --port P [--host H] [--connections C] [--requests N]
//               [--binary] [--rate R --duration-s T [--max-outstanding W]]
//               [--instance SPEC]... [--qnums 1,2,3] [--deadline-ms D]
//               [--degraded-every K] [--burst B] [--verify]
//               [--frontend LABEL] [--shards-label N]
//               [--json BENCH_service.json] [--json-append]
//               [--shutdown] [--version]
//   licm_client --port P --raw LINE [--raw LINE]...
//
// --raw sends the given request lines verbatim over one connection and
// prints each response line to stdout — the scriptable path to the
// `mutate` / `version` / `load` verbs (exit 1 if any response has
// ok:false). No load phase, no JSON report.
//
// --binary speaks the length-prefixed binary protocol of net/wire.h
// instead of line-JSON (the epoll server auto-detects per connection).
//
// Closed loop (default): C concurrent connections each issue N query
// requests round-robin over the instance x qnum mix, measuring
// per-request latency. Open loop (--rate R): requests arrive by a
// Poisson process at R req/s for --duration-s seconds, fanned over the C
// connections with at most --max-outstanding requests in flight (excess
// arrivals are shed client-side and counted); latency is measured from
// the *intended* arrival time, so queueing delay the server causes under
// saturation is in the tail, not hidden by coordinated omission.
// Phase 2 (optional, --burst B): B one-shot connections fire
// simultaneously to provoke admission control; kOverloaded responses are
// expected there and are not protocol errors. A final `stats` request
// snapshots the server counters. Throughput and p50/p95/p99 latency go
// to --json in the standard BENCH format (--json-append accumulates rows
// across runs; --frontend/--shards-label tag the row's identity columns
// so bench_diff compares like with like).
//
// --verify rebuilds every instance from the same specs the server got
// and computes offline exact bounds per (instance, qnum); every
// non-degraded response must match them bit-identically and every
// degraded response's interval must contain them. Exit code 1 on any
// protocol error or verification failure.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/version.h"
#include "harness.h"
#include "licm/evaluator.h"
#include "net/wire.h"
#include "service/json.h"
#include "service_workload.h"

namespace {

using namespace licm;

class Conn {
 public:
  ~Conn() {
    if (fd_ >= 0) ::close(fd_);
  }

  void set_binary(bool binary) { binary_ = binary; }

  Status Connect(const std::string& host, int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
      return Status::IOError(std::string("socket: ") + std::strerror(errno));
    }
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      return Status::InvalidArgument("bad host '" + host + "'");
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return Status::IOError(std::string("connect: ") + std::strerror(errno));
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return Status::OK();
  }

  /// Unblocks any thread inside recv() (open-loop drain teardown).
  void ShutdownSocket() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  }

  Status SendBytes(const std::string& data) {
    size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t w = ::send(fd_, data.data() + sent, data.size() - sent,
                               MSG_NOSIGNAL);
      if (w < 0 && errno == EINTR) continue;
      if (w <= 0) {
        return Status::IOError(std::string("send: ") + std::strerror(errno));
      }
      sent += static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Status SendLine(const std::string& line) { return SendBytes(line + "\n"); }

  /// Sends one query-protocol request in the connection's codec.
  Status SendRequest(const service::WireRequest& req) {
    if (binary_) return SendBytes(net::EncodeRequestFrame(req));
    return SendLine(RenderRequestLine(req));
  }

  Result<std::string> RecvLine() {
    while (true) {
      const size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      LICM_RETURN_NOT_OK(Fill());
    }
  }

  /// One response document in the connection's codec — always the
  /// line-JSON text (the binary framing carries it verbatim).
  Result<std::string> RecvResponse() {
    if (!binary_) return RecvLine();
    while (true) {
      size_t consumed = 0;
      net::Frame frame;
      LICM_ASSIGN_OR_RETURN(bool complete,
                            net::TryDecodeFrame(buffer_, &consumed, &frame));
      if (complete) {
        buffer_.erase(0, consumed);
        if (frame.type != net::kFrameResponse) {
          return Status::InvalidArgument("unexpected frame type from server");
        }
        return std::move(frame.payload);
      }
      LICM_RETURN_NOT_OK(Fill());
    }
  }

  Result<service::JsonValue> RoundTrip(const std::string& request) {
    LICM_RETURN_NOT_OK(SendLine(request));
    LICM_ASSIGN_OR_RETURN(std::string line, RecvLine());
    return service::ParseJson(line);
  }

  Result<service::JsonValue> RoundTripRequest(
      const service::WireRequest& req) {
    LICM_RETURN_NOT_OK(SendRequest(req));
    LICM_ASSIGN_OR_RETURN(std::string response, RecvResponse());
    return service::ParseJson(response);
  }

  /// Client-side rendering of a query request as a protocol line.
  static std::string RenderRequestLine(const service::WireRequest& req) {
    std::string line = "{\"op\":\"" + req.op +
                       "\",\"id\":" + std::to_string(req.id);
    if (!req.instance.empty()) line += ",\"instance\":\"" + req.instance + "\"";
    if (req.op == "query") {
      line += ",\"qnum\":" + std::to_string(req.qnum);
      if (req.deadline_ms >= 0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.3f", req.deadline_ms);
        line += std::string(",\"deadline_ms\":") + buf;
      }
    }
    return line + "}";
  }

 private:
  Status Fill() {
    char chunk[16384];
    while (true) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return Status::IOError("connection closed mid-response");
      buffer_.append(chunk, static_cast<size_t>(n));
      return Status::OK();
    }
  }

  int fd_ = -1;
  bool binary_ = false;
  std::string buffer_;
};

struct Expected {
  double min = 0, max = 0;
};

struct Tally {
  int64_t ok = 0;
  int64_t degraded = 0;
  int64_t overloaded = 0;
  int64_t protocol_errors = 0;
  int64_t verify_failures = 0;
};

std::atomic<int64_t> g_next_id{1};

service::WireRequest MakeQuery(const std::string& instance, int qnum,
                               double deadline_ms) {
  service::WireRequest req;
  req.op = "query";
  req.id = g_next_id.fetch_add(1);
  req.instance = instance;
  req.qnum = qnum;
  req.deadline_ms = deadline_ms;
  return req;
}

// Classifies one query response into the tally, verifying against the
// offline bounds when available. Returns false only on protocol errors
// or verification failures (kOverloaded is an expected outcome).
bool Classify(const Result<service::JsonValue>& reply, const Expected* want,
              Tally* tally) {
  if (!reply.ok()) {
    ++tally->protocol_errors;
    std::fprintf(stderr, "protocol error: %s\n",
                 reply.status().ToString().c_str());
    return false;
  }
  auto ok = reply->GetBool("ok", false);
  if (!ok.ok()) {
    ++tally->protocol_errors;
    return false;
  }
  if (!*ok) {
    auto code = reply->GetString("status", "");
    if (code.ok() && *code == "Overloaded") {
      ++tally->overloaded;
      return true;
    }
    ++tally->protocol_errors;
    std::fprintf(stderr, "request failed: %s\n",
                 code.ok() ? code->c_str() : "?");
    return false;
  }
  auto degraded = reply->GetBool("degraded", false);
  auto min = reply->GetNumber("min", 0);
  auto max = reply->GetNumber("max", 0);
  if (!degraded.ok() || !min.ok() || !max.ok()) {
    ++tally->protocol_errors;
    return false;
  }
  ++tally->ok;
  if (*degraded) ++tally->degraded;
  if (want == nullptr) return true;
  if (*degraded) {
    // Containment: the degraded interval must cover the exact bounds.
    if (*min > want->min || *max < want->max) {
      ++tally->verify_failures;
      std::fprintf(stderr,
                   "VERIFY: degraded interval [%g, %g] does not contain "
                   "exact [%g, %g]\n",
                   *min, *max, want->min, want->max);
      return false;
    }
  } else if (*min != want->min || *max != want->max) {
    ++tally->verify_failures;
    std::fprintf(stderr,
                 "VERIFY: exact response [%g, %g] != offline [%g, %g]\n",
                 *min, *max, want->min, want->max);
    return false;
  }
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --port P [--host H] [--connections C] [--requests N]\n"
      "          [--binary] [--rate R --duration-s T [--max-outstanding W]]\n"
      "          [--instance SPEC]... [--qnums 1,2] [--deadline-ms D]\n"
      "          [--degraded-every K] [--burst B] [--verify]\n"
      "          [--frontend LABEL] [--shards-label N]\n"
      "          [--json FILE] [--json-append] [--shutdown] [--version]\n"
      "       %s --port P --raw LINE [--raw LINE]...\n",
      argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  int connections = 4;
  int requests = 8;
  bool binary = false;
  double rate = 0.0;       // > 0 selects the open-loop mode
  double duration_s = 5.0;
  int max_outstanding = 256;
  std::vector<std::string> instance_args;
  std::vector<int> qnums;
  double deadline_ms = -1.0;
  int degraded_every = 0;
  int burst = 0;
  bool verify = false;
  bool send_shutdown = false;
  std::string json_path = "BENCH_service.json";
  bool json_append = false;
  std::string frontend = "unspecified";
  int shards_label = 1;
  std::vector<std::string> raw_lines;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--version") {
      std::printf("%s\n", VersionString("licm_client").c_str());
      return 0;
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--binary") {
      binary = true;
    } else if (arg == "--shutdown") {
      send_shutdown = true;
    } else if (arg == "--json-append") {
      json_append = true;
    } else if (arg == "--host") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      host = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      port = std::atoi(v);
    } else if (arg == "--connections") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      connections = std::atoi(v);
    } else if (arg == "--requests") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      requests = std::atoi(v);
    } else if (arg == "--rate") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      rate = std::atof(v);
    } else if (arg == "--duration-s") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      duration_s = std::atof(v);
    } else if (arg == "--max-outstanding") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      max_outstanding = std::atoi(v);
    } else if (arg == "--instance") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      instance_args.push_back(v);
    } else if (arg == "--qnums") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      for (const char* p = v; *p != '\0'; ++p) {
        if (*p >= '1' && *p <= '9') qnums.push_back(*p - '0');
      }
    } else if (arg == "--deadline-ms") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      deadline_ms = std::atof(v);
    } else if (arg == "--degraded-every") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      degraded_every = std::atoi(v);
    } else if (arg == "--burst") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      burst = std::atoi(v);
    } else if (arg == "--frontend") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      frontend = v;
    } else if (arg == "--shards-label") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      shards_label = std::atoi(v);
    } else if (arg == "--json") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      json_path = v;
    } else if (arg == "--raw") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      raw_lines.push_back(v);
    } else {
      return Usage(argv[0]);
    }
  }
  if (port <= 0) return Usage(argv[0]);

  if (!raw_lines.empty()) {
    Conn conn;
    Status connected = conn.Connect(host, port);
    if (!connected.ok()) {
      std::fprintf(stderr, "%s\n", connected.ToString().c_str());
      return 1;
    }
    bool all_ok = true;
    for (const std::string& line : raw_lines) {
      Status sent = conn.SendLine(line);
      if (!sent.ok()) {
        std::fprintf(stderr, "%s\n", sent.ToString().c_str());
        return 1;
      }
      auto response = conn.RecvLine();
      if (!response.ok()) {
        std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
        return 1;
      }
      std::printf("%s\n", response->c_str());
      auto parsed = service::ParseJson(*response);
      if (!parsed.ok()) {
        all_ok = false;
      } else {
        auto ok = parsed->GetBool("ok", false);
        if (!ok.ok() || !*ok) all_ok = false;
      }
    }
    return all_ok ? 0 : 1;
  }

  if (instance_args.empty()) instance_args.push_back("demo=kanon:4");
  if (qnums.empty()) qnums = {1, 2};
  if (connections < 1) connections = 1;
  if (requests < 1) requests = 1;
  if (max_outstanding < 1) max_outstanding = 1;

  std::vector<tools::InstanceSpec> specs;
  for (const std::string& text : instance_args) {
    auto spec = tools::ParseInstanceSpec(text);
    if (!spec.ok()) {
      std::fprintf(stderr, "bad --instance: %s\n",
                   spec.status().ToString().c_str());
      return 2;
    }
    specs.push_back(*spec);
  }

  // Offline oracle: exact bounds per (instance, qnum), computed from the
  // same spec strings the server was started with.
  std::map<std::pair<std::string, int>, Expected> expected;
  if (verify) {
    for (const auto& spec : specs) {
      auto enc = tools::BuildInstance(spec);
      if (!enc.ok()) {
        std::fprintf(stderr, "offline build of '%s' failed: %s\n",
                     spec.name.c_str(), enc.status().ToString().c_str());
        return 1;
      }
      for (int qnum : qnums) {
        auto query = tools::BuildServiceQuery(spec, qnum);
        if (!query.ok()) return 1;
        auto ans = AnswerAggregate(**query, enc->db, {});
        if (!ans.ok()) {
          std::fprintf(stderr, "offline solve of %s q%d failed: %s\n",
                       spec.name.c_str(), qnum,
                       ans.status().ToString().c_str());
          return 1;
        }
        if (!ans->bounds.min.exact || !ans->bounds.max.exact) {
          std::fprintf(stderr,
                       "offline solve of %s q%d not exact; refusing to "
                       "verify against it\n",
                       spec.name.c_str(), qnum);
          return 1;
        }
        expected[{spec.name, qnum}] = {ans->bounds.min.value,
                                       ans->bounds.max.value};
      }
    }
    std::fprintf(stderr, "offline oracle ready (%zu cells)\n",
                 expected.size());
  }

  auto oracle_for = [&](const std::string& instance,
                        int qnum) -> const Expected* {
    if (!verify) return nullptr;
    auto it = expected.find({instance, qnum});
    return it == expected.end() ? nullptr : &it->second;
  };

  // Latencies go straight into a shared lock-free histogram; worker
  // threads never contend on the tally mutex per request.
  static licm::metrics::Histogram latency_hist;
  std::mutex tally_mu;
  Tally tally;
  auto merge_tally = [&](const Tally& local) {
    std::lock_guard<std::mutex> lock(tally_mu);
    tally.ok += local.ok;
    tally.degraded += local.degraded;
    tally.overloaded += local.overloaded;
    tally.protocol_errors += local.protocol_errors;
    tally.verify_failures += local.verify_failures;
  };

  double load_s = 0.0;
  int64_t shed = 0;
  int64_t completed_requests = 0;

  if (rate > 0.0) {
    // ----------------------------------------------------------------
    // Open loop: Poisson arrivals at `rate` req/s over C connections,
    // at most `max_outstanding` in flight. One sender thread paces the
    // schedule; one receiver thread per connection correlates responses
    // by id against the intended arrival time.
    // ----------------------------------------------------------------
    std::vector<std::unique_ptr<Conn>> conns;
    for (int c = 0; c < connections; ++c) {
      auto conn = std::make_unique<Conn>();
      conn->set_binary(binary);
      Status connected = conn->Connect(host, port);
      if (!connected.ok()) {
        std::fprintf(stderr, "conn %d: %s\n", c,
                     connected.ToString().c_str());
        return 1;
      }
      conns.push_back(std::move(conn));
    }

    struct PendingReq {
      const Expected* want = nullptr;
      double intended_ms = 0.0;
    };
    std::mutex pending_mu;
    std::unordered_map<int64_t, PendingReq> pending;
    std::atomic<int64_t> outstanding{0};
    std::atomic<int64_t> local_shed{0};
    std::atomic<bool> draining{false};
    StopWatch clock;

    std::vector<std::thread> receivers;
    receivers.reserve(conns.size());
    for (auto& conn_ptr : conns) {
      receivers.emplace_back([&, conn = conn_ptr.get()] {
        Tally local;
        while (true) {
          auto response = conn->RecvResponse();
          if (!response.ok()) {
            // Socket torn down by the drain path — expected; anything
            // else already failed the pending-map accounting below.
            break;
          }
          auto parsed = service::ParseJson(*response);
          PendingReq info;
          bool known = false;
          if (parsed.ok()) {
            auto id = parsed->GetInt("id", -1);
            if (id.ok()) {
              std::lock_guard<std::mutex> lock(pending_mu);
              auto it = pending.find(*id);
              if (it != pending.end()) {
                info = it->second;
                pending.erase(it);
                known = true;
              }
            }
          }
          if (known) {
            latency_hist.Observe(clock.ElapsedMs() - info.intended_ms);
            outstanding.fetch_sub(1);
          }
          Classify(parsed, known ? info.want : nullptr, &local);
        }
        merge_tally(local);
      });
    }

    Tally sender_tally;
    {
      Rng rng(0x0b5e12a7);  // fixed seed: reproducible schedules
      const double duration_ms = duration_s * 1e3;
      double next_ms = 0.0;
      size_t rr = 0;
      int64_t seq = 0;
      while (next_ms <= duration_ms) {
        const double now = clock.ElapsedMs();
        if (next_ms > now) {
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(next_ms - now));
        }
        if (outstanding.load(std::memory_order_relaxed) >= max_outstanding) {
          // Bounded window: this arrival is shed, the schedule advances.
          local_shed.fetch_add(1);
        } else {
          const auto& spec = specs[static_cast<size_t>(seq) % specs.size()];
          const int qnum = qnums[static_cast<size_t>(seq) % qnums.size()];
          const bool degrade =
              degraded_every > 0 && (seq + 1) % degraded_every == 0;
          service::WireRequest req =
              MakeQuery(spec.name, qnum, degrade ? 0.0 : deadline_ms);
          {
            std::lock_guard<std::mutex> lock(pending_mu);
            pending[req.id] = {oracle_for(spec.name, qnum), next_ms};
          }
          outstanding.fetch_add(1);
          Status sent = conns[rr % conns.size()]->SendRequest(req);
          ++rr;
          if (!sent.ok()) {
            {
              std::lock_guard<std::mutex> lock(pending_mu);
              pending.erase(req.id);
            }
            outstanding.fetch_sub(1);
            ++sender_tally.protocol_errors;
          }
          ++seq;
        }
        // Exponential inter-arrival gap: a Poisson arrival process.
        const double u =
            static_cast<double>(rng.Next() >> 11) * (1.0 / 9007199254740992.0);
        next_ms += -std::log1p(-u) * (1e3 / rate);
      }
    }

    // Drain: give in-flight requests a grace period, then tear down the
    // sockets to unblock the receivers.
    StopWatch drain;
    while (outstanding.load() > 0 && drain.ElapsedMs() < 30e3) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    load_s = clock.ElapsedMs() / 1e3;
    const int64_t leftover = outstanding.load();
    if (leftover > 0) {
      std::fprintf(stderr, "drain timeout: %lld responses never arrived\n",
                   static_cast<long long>(leftover));
      sender_tally.protocol_errors += leftover;
    }
    draining.store(true);
    for (auto& conn : conns) conn->ShutdownSocket();
    for (std::thread& t : receivers) t.join();
    merge_tally(sender_tally);
    shed = local_shed.load();
  } else {
    // ----------------------------------------------------------------
    // Closed loop: C connections, N sequential round trips each.
    // ----------------------------------------------------------------
    StopWatch load_watch;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(connections));
    for (int c = 0; c < connections; ++c) {
      threads.emplace_back([&, c] {
        Tally local;
        Conn conn;
        conn.set_binary(binary);
        Status connected = conn.Connect(host, port);
        if (!connected.ok()) {
          std::fprintf(stderr, "conn %d: %s\n", c,
                       connected.ToString().c_str());
          local.protocol_errors += requests;
        } else {
          for (int r = 0; r < requests; ++r) {
            const auto& spec =
                specs[static_cast<size_t>(c + r) % specs.size()];
            const int qnum = qnums[static_cast<size_t>(r) % qnums.size()];
            const bool degrade =
                degraded_every > 0 && (r + 1) % degraded_every == 0;
            StopWatch watch;
            auto reply = conn.RoundTripRequest(
                MakeQuery(spec.name, qnum, degrade ? 0.0 : deadline_ms));
            latency_hist.Observe(watch.ElapsedMs());
            Classify(reply, oracle_for(spec.name, qnum), &local);
          }
        }
        merge_tally(local);
      });
    }
    for (std::thread& t : threads) t.join();
    load_s = load_watch.ElapsedMs() / 1e3;
  }

  // Phase 2: simultaneous burst to provoke admission control.
  if (burst > 0) {
    std::vector<std::thread> burst_threads;
    burst_threads.reserve(static_cast<size_t>(burst));
    for (int b = 0; b < burst; ++b) {
      burst_threads.emplace_back([&, b] {
        Tally local;
        Conn conn;
        conn.set_binary(binary);
        if (!conn.Connect(host, port).ok()) {
          ++local.protocol_errors;
        } else {
          const auto& spec = specs[static_cast<size_t>(b) % specs.size()];
          // Nudge each deadline so no two burst requests are identical:
          // the point of the burst is to overflow the admission queue,
          // and identical in-flight requests would coalesce into one
          // solve instead of sixteen.
          auto reply = conn.RoundTripRequest(
              MakeQuery(spec.name, qnums[0], deadline_ms + b + 1));
          Classify(reply, nullptr, &local);
        }
        merge_tally(local);
      });
    }
    for (std::thread& t : burst_threads) t.join();
  }

  // Final control connection: server-side counters, optional shutdown.
  int64_t server_rejected = -1;
  {
    Conn conn;
    if (conn.Connect(host, port).ok()) {
      auto stats = conn.RoundTrip("{\"op\":\"stats\",\"id\":0}");
      if (stats.ok()) {
        auto rejected = stats->GetInt("rejected_overload", -1);
        if (rejected.ok()) server_rejected = *rejected;
      }
      if (send_shutdown) {
        (void)conn.RoundTrip("{\"op\":\"shutdown\",\"id\":0}");
      }
    }
  }

  // Quantiles from the shared log-bucketed histogram (common/metrics.h)
  // — one implementation for client- and server-side latency summaries.
  const licm::metrics::HistogramSnapshot lat = latency_hist.Snapshot();
  completed_requests = lat.count;
  const double p50 = lat.Quantile(0.50);
  const double p95 = lat.Quantile(0.95);
  const double p99 = lat.Quantile(0.99);
  const double rps =
      load_s > 0 ? static_cast<double>(completed_requests) / load_s : 0.0;

  std::printf(
      "requests=%lld ok=%lld degraded=%lld overloaded=%lld errors=%lld "
      "verify_failures=%lld shed=%lld\n",
      static_cast<long long>(completed_requests + burst),
      static_cast<long long>(tally.ok),
      static_cast<long long>(tally.degraded),
      static_cast<long long>(tally.overloaded),
      static_cast<long long>(tally.protocol_errors),
      static_cast<long long>(tally.verify_failures),
      static_cast<long long>(shed));
  std::printf("throughput=%.1f req/s p50=%.2fms p95=%.2fms p99=%.2fms\n",
              rps, p50, p95, p99);
  if (server_rejected >= 0) {
    std::printf("server rejected_overload=%lld\n",
                static_cast<long long>(server_rejected));
  }

  bench::JsonRecord rec;
  rec.AddString("bench", "service")
      .AddString("frontend", frontend)
      .AddString("codec", binary ? "binary" : "json")
      .AddString("mode", rate > 0 ? "open" : "closed")
      .AddInt("shards", shards_label)
      .AddInt("connections", connections)
      .AddInt("requests_per_connection", rate > 0 ? 0 : requests)
      .AddInt("burst", burst)
      .AddInt("max_outstanding", rate > 0 ? max_outstanding : 0)
      .AddNumber("offered_rps", rate)
      .AddNumber("duration_s", rate > 0 ? duration_s : 0.0)
      .AddInt("ok", tally.ok)
      .AddInt("degraded", tally.degraded)
      .AddInt("overloaded", tally.overloaded)
      .AddInt("shed", shed)
      .AddInt("protocol_errors", tally.protocol_errors)
      .AddInt("verify_failures", tally.verify_failures)
      .AddInt("server_rejected_overload", server_rejected)
      .AddBool("verified", verify)
      .AddNumber("throughput_rps", rps)
      .AddNumber("achieved_rps", rps)
      .AddNumber("p50_ms", p50)
      .AddNumber("p95_ms", p95)
      .AddNumber("p99_ms", p99)
      .AddNumber("load_seconds", load_s);
  Status wrote = json_append ? bench::AppendBenchJson(json_path, {rec})
                             : bench::WriteBenchJson(json_path, {rec});
  if (!wrote.ok()) {
    std::fprintf(stderr, "writing %s failed: %s\n", json_path.c_str(),
                 wrote.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());

  return (tally.protocol_errors > 0 || tally.verify_failures > 0) ? 1 : 0;
}
