// Load driver for licm_serve (DESIGN.md §10).
//
//   licm_client --port P [--host H] [--connections C] [--requests N]
//               [--instance SPEC]... [--qnums 1,2,3] [--deadline-ms D]
//               [--degraded-every K] [--burst B] [--verify]
//               [--json BENCH_service.json] [--shutdown] [--version]
//   licm_client --port P --raw LINE [--raw LINE]...
//
// --raw sends the given request lines verbatim over one connection and
// prints each response line to stdout — the scriptable path to the
// `mutate` / `version` / `load` verbs (exit 1 if any response has
// ok:false). No load phase, no JSON report.
//
// Phase 1 (load): C concurrent connections each issue N query requests
// round-robin over the instance x qnum mix, measuring per-request
// latency. Phase 2 (optional, --burst B): B one-shot connections fire
// simultaneously to provoke admission control; kOverloaded responses
// are expected there and are not protocol errors. A final `stats`
// request snapshots the server counters. Throughput and p50/p95/p99
// latency go to --json in the standard BENCH format.
//
// --verify rebuilds every instance from the same specs the server got
// and computes offline exact bounds per (instance, qnum); every
// non-degraded response must match them bit-identically and every
// degraded response's interval must contain them. Exit code 1 on any
// protocol error or verification failure.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/version.h"
#include "harness.h"
#include "licm/evaluator.h"
#include "service/json.h"
#include "service_workload.h"

namespace {

using namespace licm;

class Conn {
 public:
  ~Conn() {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Connect(const std::string& host, int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
      return Status::IOError(std::string("socket: ") + std::strerror(errno));
    }
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      return Status::InvalidArgument("bad host '" + host + "'");
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return Status::IOError(std::string("connect: ") + std::strerror(errno));
    }
    return Status::OK();
  }

  Status SendLine(const std::string& line) {
    std::string framed = line + "\n";
    size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t w = ::send(fd_, framed.data() + sent,
                               framed.size() - sent, MSG_NOSIGNAL);
      if (w <= 0) {
        return Status::IOError(std::string("send: ") + std::strerror(errno));
      }
      sent += static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Result<std::string> RecvLine() {
    while (true) {
      const size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return Status::IOError("connection closed mid-response");
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  Result<service::JsonValue> RoundTrip(const std::string& request) {
    LICM_RETURN_NOT_OK(SendLine(request));
    LICM_ASSIGN_OR_RETURN(std::string line, RecvLine());
    return service::ParseJson(line);
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

struct Expected {
  double min = 0, max = 0;
};

struct Tally {
  int64_t ok = 0;
  int64_t degraded = 0;
  int64_t overloaded = 0;
  int64_t protocol_errors = 0;
  int64_t verify_failures = 0;
};

std::atomic<int64_t> g_next_id{1};

std::string QueryLine(const std::string& instance, int qnum,
                      double deadline_ms) {
  std::string line = "{\"op\":\"query\",\"id\":" +
                     std::to_string(g_next_id.fetch_add(1)) +
                     ",\"instance\":\"" + instance +
                     "\",\"qnum\":" + std::to_string(qnum);
  if (deadline_ms >= 0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", deadline_ms);
    line += std::string(",\"deadline_ms\":") + buf;
  }
  return line + "}";
}

// Classifies one query response into the tally, verifying against the
// offline bounds when available. Returns false only on protocol errors
// or verification failures (kOverloaded is an expected outcome).
bool Classify(const Result<service::JsonValue>& reply, const Expected* want,
              Tally* tally) {
  if (!reply.ok()) {
    ++tally->protocol_errors;
    std::fprintf(stderr, "protocol error: %s\n",
                 reply.status().ToString().c_str());
    return false;
  }
  auto ok = reply->GetBool("ok", false);
  if (!ok.ok()) {
    ++tally->protocol_errors;
    return false;
  }
  if (!*ok) {
    auto code = reply->GetString("status", "");
    if (code.ok() && *code == "Overloaded") {
      ++tally->overloaded;
      return true;
    }
    ++tally->protocol_errors;
    std::fprintf(stderr, "request failed: %s\n",
                 code.ok() ? code->c_str() : "?");
    return false;
  }
  auto degraded = reply->GetBool("degraded", false);
  auto min = reply->GetNumber("min", 0);
  auto max = reply->GetNumber("max", 0);
  if (!degraded.ok() || !min.ok() || !max.ok()) {
    ++tally->protocol_errors;
    return false;
  }
  ++tally->ok;
  if (*degraded) ++tally->degraded;
  if (want == nullptr) return true;
  if (*degraded) {
    // Containment: the degraded interval must cover the exact bounds.
    if (*min > want->min || *max < want->max) {
      ++tally->verify_failures;
      std::fprintf(stderr,
                   "VERIFY: degraded interval [%g, %g] does not contain "
                   "exact [%g, %g]\n",
                   *min, *max, want->min, want->max);
      return false;
    }
  } else if (*min != want->min || *max != want->max) {
    ++tally->verify_failures;
    std::fprintf(stderr,
                 "VERIFY: exact response [%g, %g] != offline [%g, %g]\n",
                 *min, *max, want->min, want->max);
    return false;
  }
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --port P [--host H] [--connections C] [--requests N]\n"
      "          [--instance SPEC]... [--qnums 1,2] [--deadline-ms D]\n"
      "          [--degraded-every K] [--burst B] [--verify]\n"
      "          [--json FILE] [--shutdown] [--version]\n"
      "       %s --port P --raw LINE [--raw LINE]...\n",
      argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  int connections = 4;
  int requests = 8;
  std::vector<std::string> instance_args;
  std::vector<int> qnums;
  double deadline_ms = -1.0;
  int degraded_every = 0;
  int burst = 0;
  bool verify = false;
  bool send_shutdown = false;
  std::string json_path = "BENCH_service.json";
  std::vector<std::string> raw_lines;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--version") {
      std::printf("%s\n", VersionString("licm_client").c_str());
      return 0;
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--shutdown") {
      send_shutdown = true;
    } else if (arg == "--host") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      host = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      port = std::atoi(v);
    } else if (arg == "--connections") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      connections = std::atoi(v);
    } else if (arg == "--requests") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      requests = std::atoi(v);
    } else if (arg == "--instance") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      instance_args.push_back(v);
    } else if (arg == "--qnums") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      for (const char* p = v; *p != '\0'; ++p) {
        if (*p >= '1' && *p <= '9') qnums.push_back(*p - '0');
      }
    } else if (arg == "--deadline-ms") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      deadline_ms = std::atof(v);
    } else if (arg == "--degraded-every") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      degraded_every = std::atoi(v);
    } else if (arg == "--burst") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      burst = std::atoi(v);
    } else if (arg == "--json") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      json_path = v;
    } else if (arg == "--raw") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      raw_lines.push_back(v);
    } else {
      return Usage(argv[0]);
    }
  }
  if (port <= 0) return Usage(argv[0]);

  if (!raw_lines.empty()) {
    Conn conn;
    Status connected = conn.Connect(host, port);
    if (!connected.ok()) {
      std::fprintf(stderr, "%s\n", connected.ToString().c_str());
      return 1;
    }
    bool all_ok = true;
    for (const std::string& line : raw_lines) {
      Status sent = conn.SendLine(line);
      if (!sent.ok()) {
        std::fprintf(stderr, "%s\n", sent.ToString().c_str());
        return 1;
      }
      auto response = conn.RecvLine();
      if (!response.ok()) {
        std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
        return 1;
      }
      std::printf("%s\n", response->c_str());
      auto parsed = service::ParseJson(*response);
      if (!parsed.ok()) {
        all_ok = false;
      } else {
        auto ok = parsed->GetBool("ok", false);
        if (!ok.ok() || !*ok) all_ok = false;
      }
    }
    return all_ok ? 0 : 1;
  }

  if (instance_args.empty()) instance_args.push_back("demo=kanon:4");
  if (qnums.empty()) qnums = {1, 2};
  if (connections < 1) connections = 1;
  if (requests < 1) requests = 1;

  std::vector<tools::InstanceSpec> specs;
  for (const std::string& text : instance_args) {
    auto spec = tools::ParseInstanceSpec(text);
    if (!spec.ok()) {
      std::fprintf(stderr, "bad --instance: %s\n",
                   spec.status().ToString().c_str());
      return 2;
    }
    specs.push_back(*spec);
  }

  // Offline oracle: exact bounds per (instance, qnum), computed from the
  // same spec strings the server was started with.
  std::map<std::pair<std::string, int>, Expected> expected;
  if (verify) {
    for (const auto& spec : specs) {
      auto enc = tools::BuildInstance(spec);
      if (!enc.ok()) {
        std::fprintf(stderr, "offline build of '%s' failed: %s\n",
                     spec.name.c_str(), enc.status().ToString().c_str());
        return 1;
      }
      for (int qnum : qnums) {
        auto query = tools::BuildServiceQuery(spec, qnum);
        if (!query.ok()) return 1;
        auto ans = AnswerAggregate(**query, enc->db, {});
        if (!ans.ok()) {
          std::fprintf(stderr, "offline solve of %s q%d failed: %s\n",
                       spec.name.c_str(), qnum,
                       ans.status().ToString().c_str());
          return 1;
        }
        if (!ans->bounds.min.exact || !ans->bounds.max.exact) {
          std::fprintf(stderr,
                       "offline solve of %s q%d not exact; refusing to "
                       "verify against it\n",
                       spec.name.c_str(), qnum);
          return 1;
        }
        expected[{spec.name, qnum}] = {ans->bounds.min.value,
                                       ans->bounds.max.value};
      }
    }
    std::fprintf(stderr, "offline oracle ready (%zu cells)\n",
                 expected.size());
  }

  // Phase 1: sustained load at the target concurrency. Latencies go
  // straight into a shared lock-free histogram; worker threads never
  // contend on the tally mutex per request.
  static licm::metrics::Histogram latency_hist;
  std::mutex tally_mu;
  Tally tally;
  StopWatch load_watch;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(connections));
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      Tally local;
      Conn conn;
      Status connected = conn.Connect(host, port);
      if (!connected.ok()) {
        std::fprintf(stderr, "conn %d: %s\n", c,
                     connected.ToString().c_str());
        local.protocol_errors += requests;
      } else {
        for (int r = 0; r < requests; ++r) {
          const auto& spec = specs[static_cast<size_t>(c + r) %
                                   specs.size()];
          const int qnum = qnums[static_cast<size_t>(r) % qnums.size()];
          const bool degrade = degraded_every > 0 &&
                               (r + 1) % degraded_every == 0;
          const double dl = degrade ? 0.0 : deadline_ms;
          const Expected* want = nullptr;
          if (verify) {
            auto it = expected.find({spec.name, qnum});
            if (it != expected.end()) want = &it->second;
          }
          StopWatch watch;
          auto reply = conn.RoundTrip(QueryLine(spec.name, qnum, dl));
          latency_hist.Observe(watch.ElapsedMs());
          Classify(reply, want, &local);
        }
      }
      std::lock_guard<std::mutex> lock(tally_mu);
      tally.ok += local.ok;
      tally.degraded += local.degraded;
      tally.overloaded += local.overloaded;
      tally.protocol_errors += local.protocol_errors;
      tally.verify_failures += local.verify_failures;
    });
  }
  for (std::thread& t : threads) t.join();
  const double load_s = load_watch.ElapsedMs() / 1e3;

  // Phase 2: simultaneous burst to provoke admission control.
  if (burst > 0) {
    std::vector<std::thread> burst_threads;
    burst_threads.reserve(static_cast<size_t>(burst));
    for (int b = 0; b < burst; ++b) {
      burst_threads.emplace_back([&, b] {
        Tally local;
        Conn conn;
        if (!conn.Connect(host, port).ok()) {
          ++local.protocol_errors;
        } else {
          const auto& spec = specs[static_cast<size_t>(b) % specs.size()];
          auto reply =
              conn.RoundTrip(QueryLine(spec.name, qnums[0], deadline_ms));
          Classify(reply, nullptr, &local);
        }
        std::lock_guard<std::mutex> lock(tally_mu);
        tally.ok += local.ok;
        tally.degraded += local.degraded;
        tally.overloaded += local.overloaded;
        tally.protocol_errors += local.protocol_errors;
      });
    }
    for (std::thread& t : burst_threads) t.join();
  }

  // Final control connection: server-side counters, optional shutdown.
  int64_t server_rejected = -1;
  {
    Conn conn;
    if (conn.Connect(host, port).ok()) {
      auto stats = conn.RoundTrip("{\"op\":\"stats\",\"id\":0}");
      if (stats.ok()) {
        auto rejected = stats->GetInt("rejected_overload", -1);
        if (rejected.ok()) server_rejected = *rejected;
      }
      if (send_shutdown) {
        (void)conn.RoundTrip("{\"op\":\"shutdown\",\"id\":0}");
      }
    }
  }

  // Quantiles from the shared log-bucketed histogram (common/metrics.h)
  // — one implementation for client- and server-side latency summaries.
  const licm::metrics::HistogramSnapshot lat = latency_hist.Snapshot();
  const double p50 = lat.Quantile(0.50);
  const double p95 = lat.Quantile(0.95);
  const double p99 = lat.Quantile(0.99);
  const double rps =
      load_s > 0 ? static_cast<double>(lat.count) / load_s : 0.0;

  std::printf(
      "requests=%zu ok=%lld degraded=%lld overloaded=%lld errors=%lld "
      "verify_failures=%lld\n",
      static_cast<size_t>(lat.count) + static_cast<size_t>(burst),
      static_cast<long long>(tally.ok),
      static_cast<long long>(tally.degraded),
      static_cast<long long>(tally.overloaded),
      static_cast<long long>(tally.protocol_errors),
      static_cast<long long>(tally.verify_failures));
  std::printf("throughput=%.1f req/s p50=%.2fms p95=%.2fms p99=%.2fms\n",
              rps, p50, p95, p99);
  if (server_rejected >= 0) {
    std::printf("server rejected_overload=%lld\n",
                static_cast<long long>(server_rejected));
  }

  bench::JsonRecord rec;
  rec.AddString("bench", "service")
      .AddInt("connections", connections)
      .AddInt("requests_per_connection", requests)
      .AddInt("burst", burst)
      .AddInt("ok", tally.ok)
      .AddInt("degraded", tally.degraded)
      .AddInt("overloaded", tally.overloaded)
      .AddInt("protocol_errors", tally.protocol_errors)
      .AddInt("verify_failures", tally.verify_failures)
      .AddInt("server_rejected_overload", server_rejected)
      .AddBool("verified", verify)
      .AddNumber("throughput_rps", rps)
      .AddNumber("p50_ms", p50)
      .AddNumber("p95_ms", p95)
      .AddNumber("p99_ms", p99)
      .AddNumber("load_seconds", load_s);
  Status wrote = bench::WriteBenchJson(json_path, {rec});
  if (!wrote.ok()) {
    std::fprintf(stderr, "writing %s failed: %s\n", json_path.c_str(),
                 wrote.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());

  return (tally.protocol_errors > 0 || tally.verify_failures > 0) ? 1 : 0;
}
