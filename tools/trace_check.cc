// Validates a Chrome trace-event JSON file produced by the telemetry
// exporter (common/trace_export.h): well-formed JSON, required per-event
// fields, and monotone span nesting per thread. Used by CI to gate the
// traced smoke bench; also handy on any trace before loading it into
// chrome://tracing.
//
// Usage: trace_check [--version] <trace.json> [trace2.json ...]
// Exit 0 when every file validates, 1 otherwise.
#include <cstdio>
#include <cstring>

#include "common/trace_export.h"
#include "common/version.h"

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--version") == 0) {
    std::printf("%s\n", licm::VersionString("trace_check").c_str());
    return 0;
  }
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s [--version] <trace.json> "
                 "[trace2.json ...]\n",
                 argv[0]);
    return 1;
  }
  bool ok = true;
  for (int i = 1; i < argc; ++i) {
    size_t num_events = 0;
    auto status = licm::telemetry::ValidateChromeTraceFile(argv[i], &num_events);
    if (status.ok()) {
      std::printf("%s: OK (%zu events)\n", argv[i], num_events);
    } else {
      std::printf("%s: FAIL: %s\n", argv[i], status.ToString().c_str());
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
