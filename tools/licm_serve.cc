// Query service front-end (DESIGN.md §10, §14).
//
//   licm_serve [--port P] [--host H] [--stdin] [--threaded]
//              [--loops N] [--shards N] [--no-coalesce]
//              [--instance name=scheme:k[:txns[:items[:seed]]]]...
//              [--workers N] [--queue N] [--deadline-ms D]
//              [--mc-worlds W] [--solver-threads T] [--slo-ms D]
//              [--metrics-port P] [--metrics-file PATH] [--version]
//
// Registers the given instances (default: one small k-anonymity
// instance named `demo`), then serves the wire protocol over TCP
// (--port, 0 = ephemeral; the chosen port is printed as `LISTENING
// <port>` before the accept loop starts) or over stdin/stdout
// (--stdin). A client `shutdown` request stops either mode.
//
// Data planes (DESIGN.md §14):
//   default      epoll front end (--loops event loops), speaking both
//                the binary framing and line-JSON — the codec is
//                auto-detected per connection from the first byte.
//                Identical concurrent queries are coalesced into one
//                solve unless --no-coalesce.
//   --threaded   the legacy thread-per-connection line-JSON server
//                (the PR-5 baseline; kept for comparison benches).
//   --shards=N   forks N worker processes before any service thread
//                exists; the parent routes requests to shards by
//                consistent hash of the instance name over unix-socket
//                backplanes. Each shard builds the full instance set,
//                owns its caches, and coalesces locally.
//
// Observability: --metrics-port serves the Prometheus text exposition of
// the process metrics registry over HTTP (0 = ephemeral; printed as
// `METRICS <port>`); --metrics-file writes the same exposition to a file
// at shutdown for scraping-free environments; --slo-ms sets the slow-
// query capture threshold served by the `slowlog` verb.
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/version.h"
#include "net/coalescer.h"
#include "net/front_end.h"
#include "net/proxy.h"
#include "service/server.h"
#include "service_workload.h"

namespace {

using namespace licm;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port P] [--host H] [--stdin] [--threaded]\n"
               "          [--loops N] [--shards N] [--no-coalesce]\n"
               "          [--instance name=scheme:k[:txns[:items[:seed]]]]...\n"
               "          [--workers N] [--queue N] [--deadline-ms D]\n"
               "          [--mc-worlds W] [--solver-threads T] [--slo-ms D]\n"
               "          [--metrics-port P] [--metrics-file PATH]\n"
               "          [--version]\n",
               argv0);
  return 2;
}

/// One process' worth of service state: the QueryService, the spec map
/// backing the query factory and the `load` verb, and the router wiring
/// them together. Built *after* fork in shard children — QueryService
/// spawns worker threads in its constructor, and threads do not survive
/// fork().
struct ServerState {
  explicit ServerState(const service::ServiceConfig& config)
      : svc(config),
        router(&svc, [this](const service::WireRequest& req)
                         -> Result<rel::QueryNodePtr> {
          tools::InstanceSpec spec;
          {
            std::lock_guard<std::mutex> lock(specs_mu);
            auto it = specs.find(req.instance);
            if (it == specs.end()) {
              return Status::NotFound("unknown instance '" + req.instance +
                                      "'");
            }
            spec = it->second;
          }
          return tools::BuildServiceQuery(spec, req.qnum);
        }) {
    router.set_loader([this](const std::string& name, const std::string& text,
                             bool replace) -> Result<uint64_t> {
      if (name.empty()) {
        return Status::InvalidArgument("load needs an 'instance' name");
      }
      // The wire spec omits the name= prefix of the CLI grammar.
      LICM_ASSIGN_OR_RETURN(tools::InstanceSpec spec,
                            tools::ParseInstanceSpec(name + "=" + text));
      LICM_ASSIGN_OR_RETURN(auto enc, tools::BuildInstance(spec));
      LICM_RETURN_NOT_OK(svc.LoadInstance(name, std::move(enc.db),
                                          std::move(enc.structure), replace));
      {
        std::lock_guard<std::mutex> lock(specs_mu);
        specs.insert_or_assign(name, spec);
      }
      return svc.VersionOf(name);
    });
  }

  Status AddInstances(const std::vector<std::string>& instance_args,
                      bool announce) {
    for (const std::string& text : instance_args) {
      LICM_ASSIGN_OR_RETURN(tools::InstanceSpec spec,
                            tools::ParseInstanceSpec(text));
      LICM_ASSIGN_OR_RETURN(auto enc, tools::BuildInstance(spec));
      LICM_RETURN_NOT_OK(svc.AddInstance(spec.name, std::move(enc.db),
                                         std::move(enc.structure)));
      specs.emplace(spec.name, spec);
      if (announce) {
        std::fprintf(stderr, "instance %s ready (%s)\n", spec.name.c_str(),
                     text.c_str());
      }
    }
    return Status::OK();
  }

  service::QueryService svc;
  std::mutex specs_mu;
  std::map<std::string, tools::InstanceSpec> specs;
  service::RequestRouter router;
};

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  int metrics_port = -1;  // -1 = no HTTP exposition endpoint
  std::string metrics_file;
  bool use_stdin = false;
  bool threaded = false;
  bool coalesce = true;
  int num_loops = 2;
  int shards = 1;
  std::vector<std::string> instance_args;
  service::ServiceConfig config;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--version") {
      std::printf("%s\n", VersionString("licm_serve").c_str());
      return 0;
    } else if (arg == "--stdin") {
      use_stdin = true;
    } else if (arg == "--threaded") {
      threaded = true;
    } else if (arg == "--no-coalesce") {
      coalesce = false;
    } else if (arg == "--loops") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      num_loops = std::atoi(v);
    } else if (arg == "--shards") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      shards = std::atoi(v);
    } else if (arg == "--host") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      host = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      port = std::atoi(v);
    } else if (arg == "--instance") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      instance_args.push_back(v);
    } else if (arg == "--workers") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      config.num_workers = std::atoi(v);
    } else if (arg == "--queue") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      config.max_queue = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--deadline-ms") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      config.default_deadline_s = std::atof(v) / 1e3;
    } else if (arg == "--mc-worlds") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      config.degraded_worlds = std::atoi(v);
    } else if (arg == "--solver-threads") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      config.solver_threads = std::atoi(v);
    } else if (arg == "--slo-ms") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      config.slo_ms = std::atof(v);
    } else if (arg == "--metrics-port") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      metrics_port = std::atoi(v);
    } else if (arg == "--metrics-file") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      metrics_file = v;
    } else {
      return Usage(argv[0]);
    }
  }
  if (instance_args.empty()) instance_args.push_back("demo=kanon:4");
  if (num_loops < 1) num_loops = 1;
  if (shards < 1) shards = 1;
  if (shards > 1 && (threaded || use_stdin)) {
    std::fprintf(stderr, "--shards is incompatible with --threaded/--stdin\n");
    return 2;
  }

  // ------------------------------------------------------------------
  // Sharded topology: fork the workers before any thread exists.
  // ------------------------------------------------------------------
  std::vector<int> backplane_fds;
  std::vector<pid_t> children;
  if (shards > 1) {
    for (int s = 0; s < shards; ++s) {
      int sv[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
        std::fprintf(stderr, "socketpair: %s\n", std::strerror(errno));
        return 1;
      }
      const pid_t pid = ::fork();
      if (pid < 0) {
        std::fprintf(stderr, "fork: %s\n", std::strerror(errno));
        return 1;
      }
      if (pid == 0) {
        // Child: keep only our backplane end, build the full service,
        // and speak binary frames with the parent until shutdown/EOF.
        ::close(sv[0]);
        for (int fd : backplane_fds) ::close(fd);
        ServerState state(config);
        Status built = state.AddInstances(instance_args, /*announce=*/s == 0);
        if (!built.ok()) {
          std::fprintf(stderr, "shard %d: %s\n", s,
                       built.ToString().c_str());
          return 1;
        }
        std::optional<net::RequestCoalescer> shard_coalescer;
        if (coalesce) {
          shard_coalescer.emplace(&state.svc);
          state.router.set_async_executor(
              [&c = *shard_coalescer](
                  service::QueryRequest request,
                  service::QueryService::ResponseCallback done) {
                c.Execute(std::move(request), std::move(done));
              });
        }
        Status ran = net::RunShardWorker(sv[1], &state.router);
        ::close(sv[1]);
        if (!ran.ok()) {
          std::fprintf(stderr, "shard %d: %s\n", s, ran.ToString().c_str());
          return 1;
        }
        return 0;
      }
      ::close(sv[1]);
      backplane_fds.push_back(sv[0]);
      children.push_back(pid);
    }
  }

  auto render_metrics = [] {
    return metrics::MetricsRegistry::Default().RenderPrometheus();
  };
  std::optional<service::MetricsHttpServer> metrics_http;
  if (metrics_port >= 0) {
    metrics_http.emplace(render_metrics);
    Status mhttp = metrics_http->Listen(host, metrics_port);
    if (!mhttp.ok()) {
      std::fprintf(stderr, "metrics listen failed: %s\n",
                   mhttp.ToString().c_str());
      return 1;
    }
    metrics_http->Start();
    std::printf("METRICS %d\n", metrics_http->port());
    std::fflush(stdout);
  }
  // Final-exposition writer for scraping-free environments: dumped once
  // at shutdown, after the last request has been counted.
  auto dump_metrics_file = [&] {
    if (metrics_file.empty()) return;
    std::FILE* f = std::fopen(metrics_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write --metrics-file %s\n",
                   metrics_file.c_str());
      return;
    }
    const std::string text = render_metrics();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  };

  if (shards > 1) {
    net::ShardProxy proxy(backplane_fds);
    proxy.Start();
    net::NetFrontEnd::Options opts;
    opts.num_loops = num_loops;
    net::NetFrontEnd front(nullptr, opts);
    front.set_dispatch([&proxy](const service::WireRequest& req,
                                std::function<void(std::string, bool)> done) {
      proxy.Forward(req, std::move(done));
    });
    Status listening = front.Listen(host, port);
    if (!listening.ok()) {
      std::fprintf(stderr, "listen failed: %s\n",
                   listening.ToString().c_str());
      return 1;
    }
    std::printf("LISTENING %d\n", front.port());
    std::fflush(stdout);
    Status served = front.Serve();
    for (pid_t pid : children) {
      int wstatus = 0;
      (void)::waitpid(pid, &wstatus, 0);
    }
    if (metrics_http.has_value()) metrics_http->Stop();
    dump_metrics_file();
    if (!served.ok()) {
      std::fprintf(stderr, "serve failed: %s\n", served.ToString().c_str());
      return 1;
    }
    return 0;
  }

  // ------------------------------------------------------------------
  // Single-process topologies.
  // ------------------------------------------------------------------
  ServerState state(config);
  Status built = state.AddInstances(instance_args, /*announce=*/true);
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.ToString().c_str());
    return 1;
  }
  std::optional<net::RequestCoalescer> coalescer;
  if (coalesce) {
    coalescer.emplace(&state.svc);
    state.router.set_async_executor(
        [&c = *coalescer](service::QueryRequest request,
                          service::QueryService::ResponseCallback done) {
          c.Execute(std::move(request), std::move(done));
        });
  }

  if (use_stdin) {
    const int64_t handled =
        service::RunBatch(&state.router, std::cin, std::cout);
    std::fprintf(stderr, "handled %lld requests\n",
                 static_cast<long long>(handled));
    if (metrics_http.has_value()) metrics_http->Stop();
    dump_metrics_file();
    return 0;
  }

  Status served;
  if (threaded) {
    service::TcpServer server(&state.router);
    Status listening = server.Listen(host, port);
    if (!listening.ok()) {
      std::fprintf(stderr, "listen failed: %s\n",
                   listening.ToString().c_str());
      return 1;
    }
    std::printf("LISTENING %d\n", server.port());
    std::fflush(stdout);
    served = server.Serve();
  } else {
    net::NetFrontEnd::Options opts;
    opts.num_loops = num_loops;
    net::NetFrontEnd front(&state.router, opts);
    Status listening = front.Listen(host, port);
    if (!listening.ok()) {
      std::fprintf(stderr, "listen failed: %s\n",
                   listening.ToString().c_str());
      return 1;
    }
    std::printf("LISTENING %d\n", front.port());
    std::fflush(stdout);
    served = front.Serve();
  }
  if (metrics_http.has_value()) metrics_http->Stop();
  dump_metrics_file();
  if (!served.ok()) {
    std::fprintf(stderr, "serve failed: %s\n", served.ToString().c_str());
    return 1;
  }
  return 0;
}
