// Query service front-end (DESIGN.md §10).
//
//   licm_serve [--port P] [--host H] [--stdin]
//              [--instance name=scheme:k[:txns[:items[:seed]]]]...
//              [--workers N] [--queue N] [--deadline-ms D]
//              [--mc-worlds W] [--solver-threads T] [--slo-ms D]
//              [--metrics-port P] [--metrics-file PATH] [--version]
//
// Registers the given instances (default: one small k-anonymity
// instance named `demo`), then serves the line-oriented JSON protocol
// over TCP (--port, 0 = ephemeral; the chosen port is printed as
// `LISTENING <port>` before the accept loop starts) or over
// stdin/stdout (--stdin). A client `shutdown` request stops either
// mode.
//
// Observability: --metrics-port serves the Prometheus text exposition of
// the process metrics registry over HTTP (0 = ephemeral; printed as
// `METRICS <port>`); --metrics-file writes the same exposition to a file
// at shutdown for scraping-free environments; --slo-ms sets the slow-
// query capture threshold served by the `slowlog` verb.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/version.h"
#include "service/server.h"
#include "service_workload.h"

namespace {

using namespace licm;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port P] [--host H] [--stdin]\n"
               "          [--instance name=scheme:k[:txns[:items[:seed]]]]...\n"
               "          [--workers N] [--queue N] [--deadline-ms D]\n"
               "          [--mc-worlds W] [--solver-threads T] [--slo-ms D]\n"
               "          [--metrics-port P] [--metrics-file PATH]\n"
               "          [--version]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  int metrics_port = -1;  // -1 = no HTTP exposition endpoint
  std::string metrics_file;
  bool use_stdin = false;
  std::vector<std::string> instance_args;
  service::ServiceConfig config;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--version") {
      std::printf("%s\n", VersionString("licm_serve").c_str());
      return 0;
    } else if (arg == "--stdin") {
      use_stdin = true;
    } else if (arg == "--host") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      host = v;
    } else if (arg == "--port") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      port = std::atoi(v);
    } else if (arg == "--instance") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      instance_args.push_back(v);
    } else if (arg == "--workers") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      config.num_workers = std::atoi(v);
    } else if (arg == "--queue") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      config.max_queue = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--deadline-ms") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      config.default_deadline_s = std::atof(v) / 1e3;
    } else if (arg == "--mc-worlds") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      config.degraded_worlds = std::atoi(v);
    } else if (arg == "--solver-threads") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      config.solver_threads = std::atoi(v);
    } else if (arg == "--slo-ms") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      config.slo_ms = std::atof(v);
    } else if (arg == "--metrics-port") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      metrics_port = std::atoi(v);
    } else if (arg == "--metrics-file") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      metrics_file = v;
    } else {
      return Usage(argv[0]);
    }
  }
  if (instance_args.empty()) instance_args.push_back("demo=kanon:4");

  service::QueryService svc(config);
  // The spec map backs both the query factory (qnum -> query against the
  // instance's scheme) and the `load` verb, which mutates it from
  // connection threads — hence the mutex.
  std::mutex specs_mu;
  std::map<std::string, tools::InstanceSpec> specs;
  for (const std::string& text : instance_args) {
    auto spec = tools::ParseInstanceSpec(text);
    if (!spec.ok()) {
      std::fprintf(stderr, "bad --instance: %s\n",
                   spec.status().ToString().c_str());
      return 2;
    }
    auto enc = tools::BuildInstance(*spec);
    if (!enc.ok()) {
      std::fprintf(stderr, "building instance '%s' failed: %s\n",
                   spec->name.c_str(), enc.status().ToString().c_str());
      return 1;
    }
    Status added = svc.AddInstance(spec->name, std::move(enc->db),
                                   std::move(enc->structure));
    if (!added.ok()) {
      std::fprintf(stderr, "registering instance '%s' failed: %s\n",
                   spec->name.c_str(), added.ToString().c_str());
      return 1;
    }
    specs.emplace(spec->name, *spec);
    std::fprintf(stderr, "instance %s ready (%s)\n", spec->name.c_str(),
                 text.c_str());
  }

  service::RequestRouter router(
      &svc,
      [&specs, &specs_mu](const service::WireRequest& req)
          -> Result<rel::QueryNodePtr> {
        tools::InstanceSpec spec;
        {
          std::lock_guard<std::mutex> lock(specs_mu);
          auto it = specs.find(req.instance);
          if (it == specs.end()) {
            return Status::NotFound("unknown instance '" + req.instance +
                                    "'");
          }
          spec = it->second;
        }
        return tools::BuildServiceQuery(spec, req.qnum);
      });
  router.set_loader([&svc, &specs, &specs_mu](
                        const std::string& name, const std::string& text,
                        bool replace) -> Result<uint64_t> {
    if (name.empty()) {
      return Status::InvalidArgument("load needs an 'instance' name");
    }
    // The wire spec omits the name= prefix of the CLI grammar.
    LICM_ASSIGN_OR_RETURN(tools::InstanceSpec spec,
                          tools::ParseInstanceSpec(name + "=" + text));
    LICM_ASSIGN_OR_RETURN(auto enc, tools::BuildInstance(spec));
    LICM_RETURN_NOT_OK(svc.LoadInstance(name, std::move(enc.db),
                                        std::move(enc.structure), replace));
    {
      std::lock_guard<std::mutex> lock(specs_mu);
      specs.insert_or_assign(name, spec);
    }
    return svc.VersionOf(name);
  });

  auto render_metrics = [] {
    return metrics::MetricsRegistry::Default().RenderPrometheus();
  };
  std::optional<service::MetricsHttpServer> metrics_http;
  if (metrics_port >= 0) {
    metrics_http.emplace(render_metrics);
    Status mhttp = metrics_http->Listen(host, metrics_port);
    if (!mhttp.ok()) {
      std::fprintf(stderr, "metrics listen failed: %s\n",
                   mhttp.ToString().c_str());
      return 1;
    }
    metrics_http->Start();
    std::printf("METRICS %d\n", metrics_http->port());
    std::fflush(stdout);
  }
  // Final-exposition writer for scraping-free environments: dumped once
  // at shutdown, after the last request has been counted.
  auto dump_metrics_file = [&] {
    if (metrics_file.empty()) return;
    std::FILE* f = std::fopen(metrics_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write --metrics-file %s\n",
                   metrics_file.c_str());
      return;
    }
    const std::string text = render_metrics();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  };

  if (use_stdin) {
    const int64_t handled = service::RunBatch(&router, std::cin, std::cout);
    std::fprintf(stderr, "handled %lld requests\n",
                 static_cast<long long>(handled));
    if (metrics_http.has_value()) metrics_http->Stop();
    dump_metrics_file();
    return 0;
  }

  service::TcpServer server(&router);
  Status listening = server.Listen(host, port);
  if (!listening.ok()) {
    std::fprintf(stderr, "listen failed: %s\n",
                 listening.ToString().c_str());
    return 1;
  }
  std::printf("LISTENING %d\n", server.port());
  std::fflush(stdout);
  Status served = server.Serve();
  if (metrics_http.has_value()) metrics_http->Stop();
  dump_metrics_file();
  if (!served.ok()) {
    std::fprintf(stderr, "serve failed: %s\n", served.ToString().c_str());
    return 1;
  }
  return 0;
}
