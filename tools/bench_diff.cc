// bench_diff: the CI regression sentinel over BENCH_*.json files.
//
//   bench_diff [options] FILE...
//     --baselines DIR       baseline directory (default bench/baselines);
//                           each FILE compares against DIR/<basename>
//     --baseline PATH       explicit baseline for a single FILE
//     --json OUT            write the machine-readable verdict JSON
//     --time-warn R         time/rate warn ratio (default 1.5)
//     --counter-fail R      cost-counter fail ratio (default 1.5)
//     --counters-warn-only  downgrade counter fails to warns (for benches
//                           with nondeterministic multi-threaded node counts)
//     --fail-on-warn        exit nonzero on warnings too
//
// Exit status: 0 pass/warn, 1 fail (or warn with --fail-on-warn),
// 2 usage or IO error. Missing baseline files are reported and skipped
// (new benches must not fail the gate before their baseline lands).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "tools/bench_diff_core.h"

namespace {

std::string Basename(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

bool FileExists(const std::string& path) {
  std::ifstream in(path);
  return static_cast<bool>(in);
}

int Usage() {
  std::fprintf(stderr,
               "usage: bench_diff [--baselines DIR] [--baseline PATH] "
               "[--json OUT]\n"
               "                  [--time-warn R] [--counter-fail R] "
               "[--counters-warn-only]\n"
               "                  [--fail-on-warn] FILE...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using licm::tools::DiffBenchFiles;
  using licm::tools::DiffOptions;
  using licm::tools::FileDiff;
  using licm::tools::Verdict;

  std::string baselines_dir = "bench/baselines";
  std::string explicit_baseline;
  std::string json_out;
  DiffOptions opts;
  bool fail_on_warn = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--baselines") {
      const char* v = next();
      if (v == nullptr) return Usage();
      baselines_dir = v;
    } else if (arg == "--baseline") {
      const char* v = next();
      if (v == nullptr) return Usage();
      explicit_baseline = v;
    } else if (arg == "--json") {
      const char* v = next();
      if (v == nullptr) return Usage();
      json_out = v;
    } else if (arg == "--time-warn") {
      const char* v = next();
      if (v == nullptr) return Usage();
      opts.time_warn_ratio = std::atof(v);
    } else if (arg == "--counter-fail") {
      const char* v = next();
      if (v == nullptr) return Usage();
      opts.counter_fail_ratio = std::atof(v);
    } else if (arg == "--counters-warn-only") {
      opts.counters_warn_only = true;
    } else if (arg == "--fail-on-warn") {
      fail_on_warn = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return Usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return Usage();
  if (!explicit_baseline.empty() && files.size() != 1) {
    std::fprintf(stderr, "--baseline requires exactly one FILE\n");
    return Usage();
  }

  std::vector<FileDiff> diffs;
  Verdict overall = Verdict::kPass;
  for (const std::string& file : files) {
    const std::string baseline = !explicit_baseline.empty()
                                     ? explicit_baseline
                                     : baselines_dir + "/" + Basename(file);
    if (!FileExists(baseline)) {
      std::printf("[skip] %s: no baseline at %s\n", file.c_str(),
                  baseline.c_str());
      continue;
    }
    auto diff = DiffBenchFiles(file, baseline, opts);
    if (!diff.ok()) {
      std::fprintf(stderr, "bench_diff: %s\n",
                   diff.status().ToString().c_str());
      return 2;
    }
    std::printf("%s", RenderDiffText(*diff).c_str());
    overall = Combine(overall, diff->verdict);
    diffs.push_back(std::move(*diff));
  }

  if (!json_out.empty()) {
    std::ofstream out(json_out);
    if (!out) {
      std::fprintf(stderr, "bench_diff: cannot write '%s'\n",
                   json_out.c_str());
      return 2;
    }
    out << licm::tools::RenderDiffJson(diffs) << "\n";
  }

  std::printf("bench_diff verdict: %s\n", VerdictName(overall));
  if (overall == Verdict::kFail) return 1;
  if (overall == Verdict::kWarn && fail_on_warn) return 1;
  return 0;
}
