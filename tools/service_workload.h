// Instance and query catalogue shared by licm_serve and licm_client.
//
// Both sides of the service smoke/load setup parse the same
// `name=scheme:k[:txns[:items[:seed]]]` spec strings, so the client can
// rebuild the server's instances bit-identically and verify service
// responses against offline AnswerAggregate runs. Lives in tools/ (not
// src/service/) because it reuses the bench harness's paper-query
// catalogue, which is layered above the service library.
#ifndef LICM_TOOLS_SERVICE_WORKLOAD_H_
#define LICM_TOOLS_SERVICE_WORKLOAD_H_

#include <string>
#include <vector>

#include "anonymize/licm_encode.h"
#include "harness.h"
#include "common/status.h"
#include "relational/query.h"

namespace licm::tools {

struct InstanceSpec {
  std::string name;
  bench::Scheme scheme = bench::Scheme::kKAnon;
  uint32_t k = 2;
  /// Small defaults: service instances are sized for request throughput,
  /// not for the paper-scale figure sweeps.
  uint32_t transactions = 200;
  uint32_t items = 60;
  uint64_t seed = 42;
};

/// Parses `name=scheme:k[:txns[:items[:seed]]]` where scheme is one of
/// kanon | km | supp | bipartite.
Result<InstanceSpec> ParseInstanceSpec(const std::string& text);

/// Generates the synthetic dataset, anonymizes it, and encodes it as an
/// LICM database + sampling structure. Deterministic in the spec.
Result<anonymize::EncodedDb> BuildInstance(const InstanceSpec& spec);

/// Builds paper query `qnum` (1..3) against the spec's encoding (flat vs
/// bipartite base view), with the Query-3 popularity threshold scaled to
/// the spec's transaction count as in bench::RunCell.
Result<rel::QueryNodePtr> BuildServiceQuery(const InstanceSpec& spec,
                                            int qnum);

}  // namespace licm::tools

#endif  // LICM_TOOLS_SERVICE_WORKLOAD_H_
