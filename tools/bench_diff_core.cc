#include "tools/bench_diff_core.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <unordered_set>

#include "service/json.h"

namespace licm::tools {
namespace {

using service::JsonValue;

// A bench row flattened to name -> number. Booleans map to 0/1; strings
// join the identity key when their field is identity-class and are
// otherwise ignored.
struct Row {
  std::string key;
  std::map<std::string, double> numbers;
};

const std::unordered_set<std::string>& IdentitySet() {
  static const std::unordered_set<std::string> kSet = {
      "bench", "scheme", "engine", "variant", "query", "qnum", "qnums",
      "cache", "k", "num_transactions", "txns", "items", "fanout",
      "requested_threads", "connections", "requests",
      "requests_per_connection", "burst", "mode",
      "frontend", "codec", "shards", "max_outstanding", "offered_rps",
      "duration_s",
  };
  return kSet;
}

const std::unordered_set<std::string>& BoundSet() {
  static const std::unordered_set<std::string> kSet = {
      "min", "max", "min_exact", "max_exact", "proved_min", "proved_max",
      "base_rows", "verify_failures", "protocol_errors",
  };
  return kSet;
}

const std::unordered_set<std::string>& CounterSet() {
  static const std::unordered_set<std::string> kSet = {
      "nodes", "lp_solves", "lp_pivots", "cache_misses", "canonical_forms",
      "presolve_calls", "decompose_calls", "components", "warm_lp_solves",
      "strong_branch_solves", "cuts_generated", "rc_fixed_vars",
  };
  return kSet;
}

const std::unordered_set<std::string>& RateSet() {
  static const std::unordered_set<std::string> kSet = {
      "rows_per_s", "throughput_rps", "achieved_rps", "speedup",
      "query_speedup", "cache_hit_rate", "cache_hits", "cuts_reused",
  };
  return kSet;
}

bool HasSuffix(const std::string& s, const char* suffix) {
  const size_t n = std::string(suffix).size();
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

std::string FormatNum(double v) {
  char buf[64];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g", v);
  }
  return buf;
}

Row FlattenRow(const JsonValue& obj) {
  Row row;
  // Identity fields in a fixed order so keys compare across files even
  // if writers reorder columns.
  std::map<std::string, std::string> identity;
  for (const auto& [name, value] : obj.object) {
    const MetricClass cls = ClassifyMetric(name);
    switch (value.kind) {
      case JsonValue::Kind::kNumber:
        if (cls == MetricClass::kIdentity) {
          identity[name] = FormatNum(value.number);
        } else {
          row.numbers[name] = value.number;
        }
        break;
      case JsonValue::Kind::kBool:
        if (cls == MetricClass::kIdentity) {
          identity[name] = value.boolean ? "true" : "false";
        } else {
          row.numbers[name] = value.boolean ? 1.0 : 0.0;
        }
        break;
      case JsonValue::Kind::kString:
        if (cls == MetricClass::kIdentity) identity[name] = value.string;
        break;
      default:
        break;  // null / nested values carry no comparable measurement
    }
  }
  for (const auto& [name, value] : identity) {
    if (!row.key.empty()) row.key += " ";
    row.key += name + "=" + value;
  }
  return row;
}

Result<std::vector<Row>> LoadBenchRows(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  LICM_ASSIGN_OR_RETURN(JsonValue root, service::ParseJson(buf.str()));
  if (root.kind != JsonValue::Kind::kArray) {
    return Status::InvalidArgument("'" + path + "' is not a JSON array");
  }
  std::vector<Row> rows;
  rows.reserve(root.array.size());
  for (const JsonValue& entry : root.array) {
    if (!entry.IsObject()) {
      return Status::InvalidArgument("'" + path +
                                     "' has a non-object array entry");
    }
    rows.push_back(FlattenRow(entry));
  }
  return rows;
}

// Compares one (baseline, current) value pair under its class rules.
// Returns a pass diff when there is nothing to report.
MetricDiff CompareMetric(const std::string& name, MetricClass cls,
                         double base, double cur, const DiffOptions& opts) {
  MetricDiff d;
  d.name = name;
  d.cls = cls;
  d.baseline = base;
  d.current = cur;
  switch (cls) {
    case MetricClass::kBound:
      if (base != cur) {
        d.verdict = Verdict::kFail;
        d.note = "bound changed (exact match required)";
      }
      break;
    case MetricClass::kCounter: {
      const double delta = cur - base;
      if (delta <= opts.counter_floor) break;  // small or improved: pass
      d.ratio = cur / std::max(base, 1.0);
      const double warn_at = 1.0 + (opts.counter_fail_ratio - 1.0) / 2.0;
      if (d.ratio > opts.counter_fail_ratio) {
        d.verdict = opts.counters_warn_only ? Verdict::kWarn : Verdict::kFail;
        d.note = opts.counters_warn_only
                     ? "cost counter regressed (downgraded to warn)"
                     : "cost counter regressed past the fail ratio";
      } else if (d.ratio > warn_at) {
        d.verdict = Verdict::kWarn;
        d.note = "cost counter crept up";
      }
      break;
    }
    case MetricClass::kTime: {
      const double floor =
          HasSuffix(name, "_ms") ? opts.time_floor_ms
          : name == "max_rss_kb" ? opts.rss_floor_kb
                                 : opts.time_floor_ms / 1e3;
      if (base <= floor && cur <= floor) break;  // below the noise floor
      if (base <= 0.0) break;
      d.ratio = cur / base;
      if (d.ratio > opts.time_warn_ratio) {
        d.verdict = Verdict::kWarn;
        d.note = "slower than baseline (times are warn-only)";
      }
      break;
    }
    case MetricClass::kRate: {
      if (cur <= 0.0 || base <= 0.0) break;
      d.ratio = base / cur;  // inverted: higher current is better
      if (d.ratio > opts.time_warn_ratio) {
        d.verdict = Verdict::kWarn;
        d.note = "rate dropped below baseline";
      }
      break;
    }
    case MetricClass::kIdentity:
    case MetricClass::kInfo:
      break;
  }
  return d;
}

RowDiff DiffRow(const std::string& key, const Row& base, const Row& cur,
                const DiffOptions& opts) {
  RowDiff rd;
  rd.key = key;
  for (const auto& [name, cur_value] : cur.numbers) {
    const auto it = base.numbers.find(name);
    if (it == base.numbers.end()) continue;  // one-sided: new column
    const MetricClass cls = ClassifyMetric(name);
    if (cls == MetricClass::kInfo || cls == MetricClass::kIdentity) continue;
    MetricDiff d = CompareMetric(name, cls, it->second, cur_value, opts);
    if (d.verdict != Verdict::kPass) {
      rd.verdict = Combine(rd.verdict, d.verdict);
      rd.metrics.push_back(std::move(d));
    }
  }
  // Severity first, then name, so reports lead with the failures.
  std::stable_sort(rd.metrics.begin(), rd.metrics.end(),
                   [](const MetricDiff& a, const MetricDiff& b) {
                     return static_cast<int>(a.verdict) >
                            static_cast<int>(b.verdict);
                   });
  return rd;
}

}  // namespace

const char* VerdictName(Verdict v) {
  switch (v) {
    case Verdict::kPass:
      return "pass";
    case Verdict::kWarn:
      return "warn";
    case Verdict::kFail:
      return "fail";
  }
  return "unknown";
}

Verdict Combine(Verdict a, Verdict b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

MetricClass ClassifyMetric(const std::string& name) {
  if (IdentitySet().count(name) > 0) return MetricClass::kIdentity;
  if (BoundSet().count(name) > 0) return MetricClass::kBound;
  if (CounterSet().count(name) > 0) return MetricClass::kCounter;
  if (RateSet().count(name) > 0) return MetricClass::kRate;
  // Registry totals stamped into the provenance block (m_solver_nodes,
  // m_rows_scanned, ...) are process-wide work measures.
  if (name.rfind("m_", 0) == 0) return MetricClass::kCounter;
  if (name == "max_rss_kb") return MetricClass::kTime;
  if (HasSuffix(name, "_ms") || HasSuffix(name, "_s") ||
      HasSuffix(name, "_seconds")) {
    return MetricClass::kTime;
  }
  return MetricClass::kInfo;
}

Result<FileDiff> DiffBenchFiles(const std::string& current_path,
                                const std::string& baseline_path,
                                const DiffOptions& opts) {
  LICM_ASSIGN_OR_RETURN(std::vector<Row> current,
                        LoadBenchRows(current_path));
  LICM_ASSIGN_OR_RETURN(std::vector<Row> baseline,
                        LoadBenchRows(baseline_path));

  FileDiff diff;
  diff.current_path = current_path;
  diff.baseline_path = baseline_path;

  // Duplicate keys (repeated cells) match in file order.
  std::map<std::string, std::vector<const Row*>> base_by_key;
  for (const Row& r : baseline) base_by_key[r.key].push_back(&r);

  for (const Row& cur : current) {
    auto it = base_by_key.find(cur.key);
    if (it == base_by_key.end() || it->second.empty()) {
      ++diff.rows_only_in_current;
      RowDiff rd;
      rd.key = cur.key;
      rd.note = "no baseline row (new cell; not gated)";
      diff.rows.push_back(std::move(rd));
      continue;
    }
    const Row* base = it->second.front();
    it->second.erase(it->second.begin());
    ++diff.rows_compared;
    RowDiff rd = DiffRow(cur.key, *base, cur, opts);
    diff.verdict = Combine(diff.verdict, rd.verdict);
    if (rd.verdict != Verdict::kPass) diff.rows.push_back(std::move(rd));
  }
  for (const auto& [key, leftovers] : base_by_key) {
    for (const Row* base : leftovers) {
      (void)base;
      ++diff.rows_only_in_baseline;
      RowDiff rd;
      rd.key = key;
      rd.verdict = Verdict::kWarn;
      rd.note = "baseline row missing from current output";
      diff.verdict = Combine(diff.verdict, rd.verdict);
      diff.rows.push_back(std::move(rd));
    }
  }
  return diff;
}

std::string RenderDiffText(const FileDiff& diff) {
  std::ostringstream out;
  out << "[" << VerdictName(diff.verdict) << "] " << diff.current_path
      << " vs " << diff.baseline_path << " (" << diff.rows_compared
      << " rows compared";
  if (diff.rows_only_in_current > 0) {
    out << ", " << diff.rows_only_in_current << " new";
  }
  if (diff.rows_only_in_baseline > 0) {
    out << ", " << diff.rows_only_in_baseline << " missing";
  }
  out << ")\n";
  for (const RowDiff& rd : diff.rows) {
    if (rd.verdict == Verdict::kPass && rd.note.empty()) continue;
    out << "  " << VerdictName(rd.verdict) << "  " << rd.key << "\n";
    if (!rd.note.empty()) out << "        " << rd.note << "\n";
    for (const MetricDiff& m : rd.metrics) {
      out << "        " << VerdictName(m.verdict) << " " << m.name << ": "
          << FormatNum(m.baseline) << " -> " << FormatNum(m.current);
      if (m.ratio != 1.0) out << " (" << FormatNum(m.ratio) << "x)";
      if (!m.note.empty()) out << " — " << m.note;
      out << "\n";
    }
  }
  return out.str();
}

std::string RenderDiffJson(const std::vector<FileDiff>& files) {
  Verdict overall = Verdict::kPass;
  for (const FileDiff& f : files) overall = Combine(overall, f.verdict);
  std::ostringstream out;
  out << "{\"verdict\":\"" << VerdictName(overall) << "\",\"files\":[";
  for (size_t i = 0; i < files.size(); ++i) {
    const FileDiff& f = files[i];
    if (i > 0) out << ",";
    out << "{\"file\":\"" << service::JsonEscape(f.current_path)
        << "\",\"baseline\":\"" << service::JsonEscape(f.baseline_path)
        << "\",\"verdict\":\"" << VerdictName(f.verdict)
        << "\",\"rows_compared\":" << f.rows_compared
        << ",\"rows_only_in_current\":" << f.rows_only_in_current
        << ",\"rows_only_in_baseline\":" << f.rows_only_in_baseline
        << ",\"rows\":[";
    for (size_t j = 0; j < f.rows.size(); ++j) {
      const RowDiff& rd = f.rows[j];
      if (j > 0) out << ",";
      out << "{\"key\":\"" << service::JsonEscape(rd.key)
          << "\",\"verdict\":\"" << VerdictName(rd.verdict) << "\"";
      if (!rd.note.empty()) {
        out << ",\"note\":\"" << service::JsonEscape(rd.note) << "\"";
      }
      out << ",\"metrics\":[";
      for (size_t k = 0; k < rd.metrics.size(); ++k) {
        const MetricDiff& m = rd.metrics[k];
        if (k > 0) out << ",";
        char nums[160];
        std::snprintf(nums, sizeof(nums),
                      "\"baseline\":%.17g,\"current\":%.17g,\"ratio\":%.17g",
                      m.baseline, m.current, m.ratio);
        out << "{\"name\":\"" << service::JsonEscape(m.name) << "\"," << nums
            << ",\"verdict\":\"" << VerdictName(m.verdict) << "\",\"note\":\""
            << service::JsonEscape(m.note) << "\"}";
      }
      out << "]}";
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

}  // namespace licm::tools
