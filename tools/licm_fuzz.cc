// Differential fuzzing CLI (DESIGN.md §9).
//
// Modes:
//   licm_fuzz [--seed S] [--cases N] [--max-vars V] [--invariant NAME]
//             [--out DIR] [--json FILE] [--no-reduce]
//     Generates N cases from seeds S, S+1, ... and checks every invariant
//     (or those whose name contains NAME). Each failure is delta-debugged
//     to a minimal repro written to DIR as fuzz_repro_<seed>.txt plus the
//     matching .lp export. Exit code 1 when any invariant failed.
//   licm_fuzz --repro FILE [--invariant NAME]
//     Replays a repro file instead of generating.
// The default seed honours the LICM_FUZZ_SEED environment variable, so a
// failing CI run is replayed locally with the seed it printed.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/version.h"
#include "harness.h"
#include "solver/lp_format.h"
#include "testing/invariants.h"
#include "testing/reducer.h"
#include "testing/repro.h"

namespace {

using licm::testing::FuzzCase;
using licm::testing::InvariantReport;
using licm::testing::Verdict;

struct Args {
  uint64_t seed = licm::FuzzSeedFromEnv(1);
  int64_t cases = 1000;
  uint32_t max_vars = 12;
  std::string invariant;  // substring filter; empty = all
  std::string repro;      // replay mode when non-empty
  std::string out_dir = ".";
  std::string json;       // summary JSON path
  bool reduce = true;
  int max_repros = 5;     // cap on repro files written per run
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seed S] [--cases N] [--max-vars V] [--invariant NAME]\n"
      "          [--out DIR] [--json FILE] [--no-reduce] [--repro FILE]\n",
      argv0);
}

bool ParseArgs(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--version") {
      std::printf("%s\n", licm::VersionString("licm_fuzz").c_str());
      std::exit(0);
    } else if (flag == "--seed") {
      const char* v = next();
      if (!v) return false;
      a->seed = std::strtoull(v, nullptr, 0);
    } else if (flag == "--cases") {
      const char* v = next();
      if (!v) return false;
      a->cases = std::strtoll(v, nullptr, 0);
    } else if (flag == "--max-vars") {
      const char* v = next();
      if (!v) return false;
      a->max_vars = static_cast<uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (flag == "--invariant") {
      const char* v = next();
      if (!v) return false;
      a->invariant = v;
    } else if (flag == "--repro") {
      const char* v = next();
      if (!v) return false;
      a->repro = v;
    } else if (flag == "--out") {
      const char* v = next();
      if (!v) return false;
      a->out_dir = v;
    } else if (flag == "--json") {
      const char* v = next();
      if (!v) return false;
      a->json = v;
    } else if (flag == "--no-reduce") {
      a->reduce = false;
    } else {
      Usage(argv[0]);
      return false;
    }
  }
  return true;
}

struct Tally {
  int64_t pass = 0, skip = 0, fail = 0;
};

// Reduces a failing case, writes the repro + .lp pair, and returns the
// repro path ("" when writing failed).
std::string EmitRepro(const FuzzCase& c, const std::string& invariant,
                      const Args& args) {
  FuzzCase small = c;
  if (args.reduce) {
    licm::testing::ReduceResult r =
        licm::testing::ReduceForInvariant(c, invariant);
    std::printf(
        "  reduced: %zu -> %zu tuples, %zu -> %zu constraints, "
        "%u -> %u vars (%d rounds)\n",
        r.tuples_before, r.tuples_after, r.constraints_before,
        r.constraints_after, r.vars_before, r.vars_after, r.rounds);
    small = std::move(r.reduced);
  }
  const std::string base =
      args.out_dir + "/fuzz_repro_" + std::to_string(c.seed);
  licm::Status st = licm::testing::WriteReproFile(small, base + ".txt");
  if (!st.ok()) {
    std::fprintf(stderr, "  repro write failed: %s\n", st.ToString().c_str());
    return "";
  }
  auto lp = licm::testing::BuildCaseLp(small);
  if (lp.ok()) {
    (void)licm::solver::WriteLpFile(*lp, licm::solver::Sense::kMaximize,
                                    base + ".lp");
  }
  std::printf("  repro: %s (+ .lp)\n", (base + ".txt").c_str());
  return base + ".txt";
}

int RunReports(const FuzzCase& c, const Args& args,
               std::map<std::string, Tally>* tally, int* repros_written) {
  auto reports = licm::testing::CheckCase(c, args.invariant);
  if (!reports.ok()) {
    std::fprintf(stderr, "seed %llu: case not checkable: %s\n",
                 static_cast<unsigned long long>(c.seed),
                 reports.status().ToString().c_str());
    return 1;
  }
  int failures = 0;
  for (const InvariantReport& r : *reports) {
    Tally& t = (*tally)[r.name];
    switch (r.verdict) {
      case Verdict::kPass: ++t.pass; break;
      case Verdict::kSkip: ++t.skip; break;
      case Verdict::kFail: ++t.fail; break;
    }
    if (r.verdict != Verdict::kFail) continue;
    ++failures;
    std::printf("FAIL seed=%llu invariant=%s: %s\n",
                static_cast<unsigned long long>(c.seed), r.name.c_str(),
                r.detail.c_str());
    std::printf("  replay: LICM_FUZZ_SEED=%llu licm_fuzz --cases 1 "
                "--invariant %s\n",
                static_cast<unsigned long long>(c.seed), r.name.c_str());
    if (*repros_written < args.max_repros) {
      if (!EmitRepro(c, r.name, args).empty()) ++(*repros_written);
    }
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;

  std::map<std::string, Tally> tally;
  int repros_written = 0;
  int64_t total_failures = 0;
  int64_t cases_run = 0;

  if (!args.repro.empty()) {
    auto c = licm::testing::ReadReproFile(args.repro);
    if (!c.ok()) {
      std::fprintf(stderr, "cannot load repro: %s\n",
                   c.status().ToString().c_str());
      return 2;
    }
    std::printf("replaying %s (seed %llu)\n", args.repro.c_str(),
                static_cast<unsigned long long>(c->seed));
    total_failures += RunReports(*c, args, &tally, &repros_written);
    cases_run = 1;
  } else {
    licm::testing::GeneratorOptions opt;
    opt.max_vars = args.max_vars;
    for (int64_t i = 0; i < args.cases; ++i) {
      const uint64_t seed = args.seed + static_cast<uint64_t>(i);
      FuzzCase c = licm::testing::GenerateCase(seed, opt);
      total_failures += RunReports(c, args, &tally, &repros_written);
      ++cases_run;
    }
  }

  std::printf("\n%lld case(s), base seed %llu%s\n",
              static_cast<long long>(cases_run),
              static_cast<unsigned long long>(args.seed),
              args.invariant.empty()
                  ? ""
                  : (" (filter '" + args.invariant + "')").c_str());
  std::printf("%-14s %8s %8s %8s\n", "invariant", "pass", "skip", "fail");
  for (const auto& [name, t] : tally) {
    std::printf("%-14s %8lld %8lld %8lld\n", name.c_str(),
                static_cast<long long>(t.pass), static_cast<long long>(t.skip),
                static_cast<long long>(t.fail));
  }

  if (!args.json.empty()) {
    std::vector<licm::bench::JsonRecord> records;
    for (const auto& [name, t] : tally) {
      licm::bench::JsonRecord rec;
      rec.AddString("suite", "licm_fuzz")
          .AddInt("base_seed", static_cast<int64_t>(args.seed))
          .AddInt("cases", cases_run)
          .AddInt("max_vars", args.max_vars)
          .AddString("invariant", name)
          .AddInt("pass", t.pass)
          .AddInt("skip", t.skip)
          .AddInt("fail", t.fail);
      records.push_back(std::move(rec));
    }
    licm::Status st = licm::bench::WriteBenchJson(args.json, records);
    if (!st.ok()) {
      std::fprintf(stderr, "json write failed: %s\n", st.ToString().c_str());
    }
  }

  if (total_failures > 0) {
    std::printf("\n%lld invariant failure(s)\n",
                static_cast<long long>(total_failures));
    return 1;
  }
  std::printf("all invariants held\n");
  return 0;
}
