// Bench regression sentinel: compares a freshly produced BENCH_*.json
// against the committed reference rows in bench/baselines/ and renders a
// machine-readable verdict (DESIGN.md §12).
//
// The comparison is metric-class aware, because the bench rows mix three
// very different kinds of numbers:
//   - bounds (min/max/min_exact/...) are answers: any drift is a
//     correctness bug and hard-fails regardless of thresholds;
//   - cost counters (nodes/lp_solves/cache_misses/...) are deterministic
//     work measures: a ratio regression past the gate hard-fails, unless
//     the caller downgrades them (multi-threaded benches have
//     racy node counts);
//   - wall times and peak RSS are machine-dependent: regressions only
//     warn, with an absolute noise floor so a 2 ms -> 4 ms blip on a busy
//     runner is not reported as "2x slower";
//   - higher-is-better rates (rows_per_s, speedup, cache_hit_rate)
//     warn when they drop by the time ratio, inverted.
// Fields present on only one side (new instrumentation vs an older
// baseline, or vice versa) are skipped — adding a column must never fail
// the gate.
#ifndef LICM_TOOLS_BENCH_DIFF_CORE_H_
#define LICM_TOOLS_BENCH_DIFF_CORE_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace licm::tools {

enum class Verdict { kPass, kWarn, kFail };
const char* VerdictName(Verdict v);
/// Severity join: Combine(kWarn, kFail) == kFail.
Verdict Combine(Verdict a, Verdict b);

enum class MetricClass {
  kIdentity,  // names the row (bench, scheme, query, k, ...)
  kBound,     // query answer: exact match required
  kCounter,   // deterministic cost: lower is better, ratio-gated fail
  kTime,      // wall time / RSS: lower is better, warn-only
  kRate,      // throughput / speedup / hit rate: higher is better, warn
  kInfo,      // provenance and machine-dependent extras: ignored
};
MetricClass ClassifyMetric(const std::string& name);

struct DiffOptions {
  /// Time or rate ratio beyond which a warning is emitted.
  double time_warn_ratio = 1.5;
  /// Cost-counter ratio beyond which the row fails (warns at the
  /// midpoint between 1 and this).
  double counter_fail_ratio = 1.5;
  /// Downgrade counter fails to warns (for benches whose node counts are
  /// nondeterministic under multi-threaded search).
  bool counters_warn_only = false;
  /// Absolute noise floors: differences where both sides sit below the
  /// floor (times), or whose absolute delta is below it (counters), pass.
  double time_floor_ms = 5.0;
  double rss_floor_kb = 20480.0;
  double counter_floor = 16.0;
};

struct MetricDiff {
  std::string name;
  MetricClass cls = MetricClass::kInfo;
  double baseline = 0.0;
  double current = 0.0;
  /// current/baseline for costs and times, baseline/current for rates.
  double ratio = 1.0;
  Verdict verdict = Verdict::kPass;
  std::string note;
};

struct RowDiff {
  /// Identity key, e.g. "bench=query_path engine=columnar query=2 ...".
  std::string key;
  Verdict verdict = Verdict::kPass;
  std::string note;  // set for unmatched rows
  /// Only metrics that warned or failed; clean metrics are not recorded.
  std::vector<MetricDiff> metrics;
};

struct FileDiff {
  std::string current_path;
  std::string baseline_path;
  Verdict verdict = Verdict::kPass;
  int rows_compared = 0;
  int rows_only_in_current = 0;   // new rows: noted, never gate
  int rows_only_in_baseline = 0;  // vanished rows: warn
  std::vector<RowDiff> rows;      // rows with something to report
};

/// Loads both files (JSON arrays of flat objects) and diffs them.
/// IO or parse problems are errors; verdicts are data, not errors.
Result<FileDiff> DiffBenchFiles(const std::string& current_path,
                                const std::string& baseline_path,
                                const DiffOptions& opts);

/// Human-readable multi-line report for one file diff.
std::string RenderDiffText(const FileDiff& diff);

/// Machine-readable verdict over all compared files:
/// {"verdict":"pass|warn|fail","files":[...]}.
std::string RenderDiffJson(const std::vector<FileDiff>& files);

}  // namespace licm::tools

#endif  // LICM_TOOLS_BENCH_DIFF_CORE_H_
