#include "service_workload.h"

#include <algorithm>
#include <cstdlib>

#include "data/transactions.h"

namespace licm::tools {
namespace {

Result<uint64_t> ParseU64(const std::string& field, const std::string& text) {
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    return Status::InvalidArgument("instance spec " + field +
                                   " must be a non-negative integer, got '" +
                                   text + "'");
  }
  return std::strtoull(text.c_str(), nullptr, 10);
}

}  // namespace

Result<InstanceSpec> ParseInstanceSpec(const std::string& text) {
  const size_t eq = text.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument(
        "instance spec must look like name=scheme:k[:txns[:items[:seed]]], "
        "got '" +
        text + "'");
  }
  InstanceSpec spec;
  spec.name = text.substr(0, eq);

  std::vector<std::string> parts;
  size_t start = eq + 1;
  while (start <= text.size()) {
    const size_t colon = text.find(':', start);
    if (colon == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, colon - start));
    start = colon + 1;
  }
  if (parts.size() < 2 || parts.size() > 5) {
    return Status::InvalidArgument(
        "instance spec must have 2-5 ':'-separated fields after '=', got '" +
        text + "'");
  }

  if (parts[0] == "kanon") spec.scheme = bench::Scheme::kKAnon;
  else if (parts[0] == "km") spec.scheme = bench::Scheme::kKm;
  else if (parts[0] == "supp") spec.scheme = bench::Scheme::kSuppression;
  else if (parts[0] == "bipartite") spec.scheme = bench::Scheme::kBipartite;
  else {
    return Status::InvalidArgument(
        "unknown scheme '" + parts[0] +
        "' (want kanon | km | supp | bipartite)");
  }

  LICM_ASSIGN_OR_RETURN(uint64_t k, ParseU64("k", parts[1]));
  if (k < 2) return Status::InvalidArgument("instance spec k must be >= 2");
  spec.k = static_cast<uint32_t>(k);
  // Bipartite encodings are solver-hard permutation instances; default
  // them smaller, as the bench config does.
  if (spec.scheme == bench::Scheme::kBipartite) spec.transactions = 60;
  if (parts.size() > 2) {
    LICM_ASSIGN_OR_RETURN(uint64_t v, ParseU64("txns", parts[2]));
    if (v == 0) return Status::InvalidArgument("txns must be positive");
    spec.transactions = static_cast<uint32_t>(v);
  }
  if (parts.size() > 3) {
    LICM_ASSIGN_OR_RETURN(uint64_t v, ParseU64("items", parts[3]));
    if (v == 0) return Status::InvalidArgument("items must be positive");
    spec.items = static_cast<uint32_t>(v);
  }
  if (parts.size() > 4) {
    LICM_ASSIGN_OR_RETURN(spec.seed, ParseU64("seed", parts[4]));
  }
  return spec;
}

Result<anonymize::EncodedDb> BuildInstance(const InstanceSpec& spec) {
  data::GeneratorConfig gen;
  gen.num_transactions = spec.transactions;
  gen.num_items = spec.items;
  gen.seed = spec.seed;
  data::TransactionDataset dataset = data::GenerateTransactions(gen);

  switch (spec.scheme) {
    case bench::Scheme::kBipartite: {
      LICM_ASSIGN_OR_RETURN(
          auto groups,
          anonymize::SafeGrouping(dataset, {spec.k, 2, spec.seed}));
      return anonymize::EncodeBipartite(groups, dataset);
    }
    case bench::Scheme::kSuppression: {
      LICM_ASSIGN_OR_RETURN(auto anon,
                            anonymize::SuppressRareItems(dataset, {spec.k}));
      return anonymize::EncodeSuppressed(anon, dataset);
    }
    case bench::Scheme::kKm:
    case bench::Scheme::kKAnon: {
      anonymize::Hierarchy h =
          anonymize::Hierarchy::BuildUniform(dataset.num_items, 2);
      anonymize::GeneralizedDataset anon;
      if (spec.scheme == bench::Scheme::kKm) {
        LICM_ASSIGN_OR_RETURN(anon,
                              anonymize::KmAnonymize(dataset, h, {spec.k, 2}));
      } else {
        LICM_ASSIGN_OR_RETURN(anon, anonymize::KAnonymize(dataset, h, {spec.k}));
      }
      return anonymize::EncodeGeneralized(anon, h, dataset);
    }
  }
  return Status::Internal("unreachable scheme");
}

Result<rel::QueryNodePtr> BuildServiceQuery(const InstanceSpec& spec,
                                            int qnum) {
  if (qnum < 1 || qnum > 3) {
    return Status::InvalidArgument("qnum must be 1, 2, or 3; got " +
                                   std::to_string(qnum));
  }
  bench::QueryParams params;
  bench::BenchConfig defaults;
  // Query 3's popularity threshold is an absolute transaction count;
  // scale it with the instance size as RunCell does for its small sweeps.
  if (spec.transactions < defaults.num_transactions) {
    params.q3_x = std::max<int64_t>(
        2, params.q3_x * spec.transactions / defaults.num_transactions);
  }
  if (spec.scheme == bench::Scheme::kBipartite) {
    return bench::BuildBipartiteQuery(qnum, params);
  }
  return bench::BuildFlatQuery(qnum, params);
}

}  // namespace licm::tools
